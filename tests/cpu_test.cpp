// Processor pipeline tests: write-buffer semantics per model, membar
// stalls, SC store serialization, load speculation + squash, verification
// stage behavior, model switching, and ROB bookkeeping — all driven by
// scripted programs through a real memory system.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "system/system.hpp"
#include "workload/scripted.hpp"

namespace dvmc {
namespace {

constexpr Addr kA = 0x400000;
constexpr Addr kB = 0x480000;  // different home/block

SystemConfig config(ConsistencyModel m, bool dvmcOn = true) {
  SystemConfig cfg = dvmcOn
                         ? SystemConfig::withDvmc(Protocol::kDirectory, m)
                         : SystemConfig::unprotected(Protocol::kDirectory, m);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.maxCycles = 3'000'000;
  return cfg;
}

RunResult runScript(SystemConfig cfg, std::vector<Instr> prog,
                    System** sysOut = nullptr) {
  static std::unique_ptr<System> keeper;
  cfg.programFactory = [prog](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) return std::make_unique<ScriptedProgram>(prog);
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
  };
  keeper = std::make_unique<System>(cfg);
  RunResult r = keeper->run();
  if (sysOut != nullptr) *sysOut = keeper.get();
  return r;
}

TEST(CpuPipeline, RetiresEveryInstruction) {
  std::vector<Instr> prog;
  for (int i = 0; i < 50; ++i) prog.push_back(Instr::compute(2));
  System* sys = nullptr;
  RunResult r = runScript(config(ConsistencyModel::kTSO), prog, &sys);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sys->core(0).retired(), 50u);
}

TEST(CpuPipeline, StoreThenLoadForwardsInPipeline) {
  System* sys = nullptr;
  RunResult r = runScript(config(ConsistencyModel::kTSO),
                          {Instr::store(kA, 321), Instr::load(kA, 1)}, &sys);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  auto& p = static_cast<ScriptedProgram&>(sys->core(0).program());
  ASSERT_EQ(p.results().size(), 1u);
  EXPECT_EQ(p.results()[0].second, 321u);
}

TEST(CpuPipeline, LoadAfterStoreDifferentWordReadsMemory) {
  System* sys = nullptr;
  RunResult r = runScript(config(ConsistencyModel::kTSO),
                          {Instr::store(kA, 1), Instr::load(kA + 8, 2)},
                          &sys);
  ASSERT_TRUE(r.completed);
  auto& p = static_cast<ScriptedProgram&>(sys->core(0).program());
  EXPECT_EQ(p.results()[0].second,
            MemoryStorage::initialPattern(kA).read(8, 8));
}

TEST(CpuPipeline, TsoWriteBufferHidesStoreLatency) {
  // Store-heavy program: TSO (buffered) must be significantly faster than
  // SC (stall per store) — the paper's Figure 3 "Base" effect.
  std::vector<Instr> prog;
  for (int i = 0; i < 40; ++i) {
    prog.push_back(Instr::store(kA + (i % 16) * kBlockSizeBytes * 4, i));
    prog.push_back(Instr::compute(1));
  }
  RunResult tso = runScript(config(ConsistencyModel::kTSO, false), prog);
  RunResult sc = runScript(config(ConsistencyModel::kSC, false), prog);
  ASSERT_TRUE(tso.completed);
  ASSERT_TRUE(sc.completed);
  EXPECT_LT(tso.cycles, sc.cycles);
}

TEST(CpuPipeline, ScStoresStillProduceCorrectValues) {
  System* sys = nullptr;
  std::vector<Instr> prog;
  for (int i = 0; i < 8; ++i) prog.push_back(Instr::store(kA + i * 8, i));
  prog.push_back(Instr::load(kA + 7 * 8, 1));
  RunResult r = runScript(config(ConsistencyModel::kSC), prog, &sys);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  auto& p = static_cast<ScriptedProgram&>(sys->core(0).program());
  EXPECT_EQ(p.results()[0].second, 7u);
}

TEST(CpuPipeline, MembarStoreLoadDrainsWriteBuffer) {
  // TSO + Membar #StoreLoad: the membar cannot pass until the store
  // performed (a full GetM round-trip with prefetching disabled), so the
  // load is serialized behind the store instead of overlapping it.
  SystemConfig cfg = config(ConsistencyModel::kTSO);
  cfg.cpu.storePrefetch = false;
  const Addr remote = 0x400040;  // homed at node 1: slow store perform
  std::vector<Instr> tail;
  for (int i = 0; i < 600; ++i) tail.push_back(Instr::compute(4));
  std::vector<Instr> with = {Instr::store(remote, 1),
                             Instr::membar(membar::kStoreLoad)};
  with.insert(with.end(), tail.begin(), tail.end());
  std::vector<Instr> without = {Instr::store(remote, 1)};
  without.insert(without.end(), tail.begin(), tail.end());
  System* sys = nullptr;
  RunResult rw = runScript(cfg, with, &sys);
  const std::uint64_t stalls = sys->core(0).stats().get("cpu.membarStalls");
  RunResult ro = runScript(cfg, without);
  ASSERT_TRUE(rw.completed);
  ASSERT_TRUE(ro.completed);
  EXPECT_EQ(rw.detections, 0u);
  EXPECT_GT(stalls, 0u) << "the membar never waited for the store";
  // Without the membar the compute tail overlaps the store's round trip;
  // with it, the tail starts only after the store performs.
  EXPECT_GT(rw.cycles, ro.cycles + 100) << "membar failed to serialize";
}

TEST(CpuPipeline, PsoStbarOrdersStores) {
  System* sys = nullptr;
  RunResult r = runScript(
      config(ConsistencyModel::kPSO),
      {Instr::store(kA, 1), Instr::stbar(), Instr::store(kB, 2),
       Instr::load(kA, 1), Instr::load(kB, 2)},
      &sys);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u) << "stbar path must satisfy the AR checker";
}

TEST(CpuPipeline, RmoMembarsEnforceAcquireRelease) {
  RunResult r = runScript(
      config(ConsistencyModel::kRMO),
      {Instr::load(kA, 1), Instr::membar(membar::kLoadLoad | membar::kLoadStore),
       Instr::store(kB, 1),
       Instr::membar(membar::kLoadStore | membar::kStoreStore),
       Instr::store(kA, 2)});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
}

TEST(CpuPipeline, RmoRunsWithoutMembars) {
  std::vector<Instr> prog;
  for (int i = 0; i < 30; ++i) {
    prog.push_back(Instr::load(kA + (i % 8) * kBlockSizeBytes));
    prog.push_back(Instr::store(kB + (i % 8) * kBlockSizeBytes, i));
  }
  RunResult r = runScript(config(ConsistencyModel::kRMO), prog);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
}

TEST(CpuPipeline, ModeSwitch32BitRunsCleanUnderRmo) {
  // Alternating 64-bit RMO and 32-bit (TSO) regions must drain cleanly and
  // satisfy the per-instruction AR tables.
  std::vector<Instr> prog;
  for (int region = 0; region < 4; ++region) {
    const bool is32 = region % 2 == 1;
    for (int i = 0; i < 6; ++i) {
      Instr s = Instr::store(kA + i * 8, region * 10 + i);
      s.is32Bit = is32;
      prog.push_back(s);
      Instr l = Instr::load(kA + i * 8);
      l.is32Bit = is32;
      prog.push_back(l);
    }
  }
  RunResult r = runScript(config(ConsistencyModel::kRMO), prog);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
}

TEST(CpuPipeline, AtomicSwapIsSerializing) {
  System* sys = nullptr;
  RunResult r = runScript(
      config(ConsistencyModel::kTSO),
      {Instr::store(kA, 5), Instr::swap(kA, 9, 1), Instr::load(kA, 2)},
      &sys);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  auto& p = static_cast<ScriptedProgram&>(sys->core(0).program());
  ASSERT_EQ(p.results().size(), 2u);
  EXPECT_EQ(p.results()[0].second, 5u);  // swap saw the buffered store
  EXPECT_EQ(p.results()[1].second, 9u);  // load saw the swap
}

TEST(CpuPipeline, SpeculativeLoadSquashedByRemoteWrite) {
  // Node 1 loads a block (token-gated loop keeps it unverified briefly)
  // while node 0 overwrites it; the run must stay detection-free, proving
  // the squash-and-replay path reconciles the values.
  SystemConfig cfg = config(ConsistencyModel::kTSO);
  cfg.numNodes = 2;
  cfg.programFactory = [](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) {
      std::vector<Instr> p;
      for (int i = 0; i < 20; ++i) {
        p.push_back(Instr::store(kA, 100 + i));
        p.push_back(Instr::compute(30));
      }
      return std::make_unique<ScriptedProgram>(p);
    }
    std::vector<Instr> p;
    for (int i = 0; i < 60; ++i) {
      p.push_back(Instr::load(kA));
      p.push_back(Instr::compute(5));
    }
    return std::make_unique<ScriptedProgram>(p);
  };
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
}

TEST(CpuPipeline, VerificationStageCostsTime) {
  // The same program with DVUO on is slower (or equal) but never faster.
  std::vector<Instr> prog;
  for (int i = 0; i < 60; ++i) {
    prog.push_back(Instr::load(kA + (i % 32) * kBlockSizeBytes));
    prog.push_back(Instr::compute(2));
  }
  RunResult base = runScript(config(ConsistencyModel::kTSO, false), prog);
  RunResult dvmc = runScript(config(ConsistencyModel::kTSO, true), prog);
  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(dvmc.completed);
  EXPECT_GE(dvmc.cycles, base.cycles);
}

TEST(CpuPipeline, TokensDeliverFinalValues) {
  System* sys = nullptr;
  std::vector<Instr> prog = {Instr::store(kA, 1), Instr::load(kA, 10),
                             Instr::store(kA, 2), Instr::load(kA, 11)};
  RunResult r = runScript(config(ConsistencyModel::kTSO), prog, &sys);
  ASSERT_TRUE(r.completed);
  auto& p = static_cast<ScriptedProgram&>(sys->core(0).program());
  ASSERT_EQ(p.results().size(), 2u);
  EXPECT_EQ(p.results()[0], (std::pair<std::uint64_t, std::uint64_t>{10, 1}));
  EXPECT_EQ(p.results()[1], (std::pair<std::uint64_t, std::uint64_t>{11, 2}));
}

TEST(CpuPipeline, WriteBufferCapacityStallsRetireNotCorrectness) {
  SystemConfig cfg = config(ConsistencyModel::kPSO);
  cfg.cpu.wbCapacity = 2;  // tiny write buffer
  std::vector<Instr> prog;
  for (int i = 0; i < 30; ++i) {
    prog.push_back(Instr::store(kA + i * kBlockSizeBytes, i));
  }
  prog.push_back(Instr::load(kA + 29 * kBlockSizeBytes, 1));
  System* sys = nullptr;
  RunResult r = runScript(cfg, prog, &sys);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  auto& p = static_cast<ScriptedProgram&>(sys->core(0).program());
  EXPECT_EQ(p.results()[0].second, 29u);
}

TEST(CpuPipeline, TinyRobStillCorrect) {
  SystemConfig cfg = config(ConsistencyModel::kTSO);
  cfg.cpu.robSize = 4;
  std::vector<Instr> prog;
  for (int i = 0; i < 40; ++i) {
    prog.push_back(Instr::store(kA + (i % 4) * 8, i));
    prog.push_back(Instr::load(kA + (i % 4) * 8));
  }
  RunResult r = runScript(cfg, prog);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
}

TEST(CpuPipeline, HangWatchdogFiresOnStuckPipeline) {
  // A program whose load can never complete (we drop every message) should
  // be flagged by the lost-operation machinery within ~2 injection periods.
  SystemConfig cfg = config(ConsistencyModel::kTSO);
  cfg.dvmc.membarInjectionPeriod = 10'000;
  cfg.maxCycles = 500'000;
  cfg.programFactory = [](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) {
      return std::make_unique<ScriptedProgram>(
          std::vector<Instr>{Instr::load(kA, 1)});
    }
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
  };
  System sys(cfg);
  sys.dataNet().setFaultFilter(
      [](Message&) { return NetFaultAction::kDrop; });
  RunResult r = sys.runUntil([&sys] { return sys.sink().any(); });
  ASSERT_TRUE(sys.sink().any());
  EXPECT_EQ(sys.sink().first().kind, CheckerKind::kLostOperation);
  EXPECT_LE(sys.sink().first().cycle, 50'000u);
  (void)r;
}

}  // namespace
}  // namespace dvmc
