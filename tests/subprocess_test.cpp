// Supervision-layer tests: the Subprocess runner's exit-status taxonomy
// (clean / nonzero / signaled / timed-out / spawn-failed), deadline
// escalation, rlimit enforcement, bounded tail capture, deterministic
// retry backoff, and Supervisor scheduling — then the campaign driver end
// to end: the chaos run (injected SIGSEGV / SIGABRT / infinite-loop hang
// must not cost a single result), quarantine triage classification,
// journal durability with torn-line recovery, --resume bit-identity
// against an uninterrupted run, the dvmc_inspect stale-heartbeat
// watchdog, and the fatal-signal crash handler's "crashed" finalization.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/subprocess.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"

namespace dvmc {
namespace {

namespace fs = std::filesystem;

std::string shellArgv0() { return "/bin/sh"; }

SubprocessOptions shell(const std::string& script) {
  SubprocessOptions o;
  o.argv = {shellArgv0(), "-c", script};
  o.deadlineMs = 30'000;  // tests must never wedge the suite
  return o;
}

std::string readFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const char* name)
      : path(fs::temp_directory_path() / "dvmc_subprocess_test" / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str(const char* leaf) const { return (path / leaf).string(); }
  fs::path path;
};

// --- exit-status taxonomy --------------------------------------------------

TEST(Subprocess, CleanExitCapturesStdout) {
  const SubprocessResult r = runSubprocess(shell("echo out-words; echo err-words >&2"));
  EXPECT_EQ(r.status.reason, ExitReason::kCleanExit);
  EXPECT_TRUE(r.status.clean());
  EXPECT_EQ(r.status.exitCode, 0);
  EXPECT_NE(r.stdoutTail.find("out-words"), std::string::npos);
  EXPECT_NE(r.stderrTail.find("err-words"), std::string::npos);
}

TEST(Subprocess, NonZeroExitKeepsCode) {
  const SubprocessResult r = runSubprocess(shell("exit 7"));
  EXPECT_EQ(r.status.reason, ExitReason::kNonZeroExit);
  EXPECT_FALSE(r.status.clean());
  EXPECT_EQ(r.status.exitCode, 7);
  EXPECT_NE(r.status.describe().find("exit 7"), std::string::npos);
}

TEST(Subprocess, FatalSignalIsClassifiedSignaled) {
  const SubprocessResult r = runSubprocess(shell("kill -SEGV $$"));
  EXPECT_EQ(r.status.reason, ExitReason::kSignaled);
  EXPECT_EQ(r.status.termSignal, SIGSEGV);
}

TEST(Subprocess, DeadlineKillsSleepingChild) {
  SubprocessOptions o = shell("sleep 30");
  o.deadlineMs = 300;
  o.graceMs = 200;
  const SubprocessResult r = runSubprocess(o);
  EXPECT_EQ(r.status.reason, ExitReason::kTimedOut);
  EXPECT_FALSE(r.status.clean());
  // Escalation must land long before the child's own 30 s sleep.
  EXPECT_LT(r.wallMs, 10'000u);
  EXPECT_NE(r.status.describe().find("timed out"), std::string::npos);
}

TEST(Subprocess, DeadlineReachesGrandchildren) {
  // The child spawns a sleeping grandchild and exits; process-group
  // escalation must not leave the grandchild holding the pipes open (a
  // lingering reader would stall the parent's drain far past the
  // deadline).
  SubprocessOptions o = shell("sleep 30 & wait");
  o.deadlineMs = 300;
  o.graceMs = 200;
  const SubprocessResult r = runSubprocess(o);
  EXPECT_EQ(r.status.reason, ExitReason::kTimedOut);
  EXPECT_LT(r.wallMs, 10'000u);
}

TEST(Subprocess, SpawnFailureIsTyped) {
  SubprocessOptions o;
  o.argv = {"/nonexistent/dvmc-no-such-binary"};
  const SubprocessResult r = runSubprocess(o);
  EXPECT_EQ(r.status.reason, ExitReason::kSpawnFailed);
  EXPECT_FALSE(r.spawnError.empty());
}

TEST(Subprocess, TailBufferKeepsNewestBytes) {
  SubprocessOptions o =
      shell("i=0; while [ $i -lt 3000 ]; do echo line-$i; i=$((i+1)); done; "
            "echo END-MARKER");
  o.maxCapturedBytes = 2048;
  const SubprocessResult r = runSubprocess(o);
  ASSERT_TRUE(r.status.clean());
  EXPECT_LE(r.stdoutTail.size(), 2048u);
  EXPECT_GT(r.stdoutBytes, 2048u);  // total production is still counted
  // The tail (where a crash message would live) survives, not the head.
  EXPECT_NE(r.stdoutTail.find("END-MARKER"), std::string::npos);
  EXPECT_EQ(r.stdoutTail.find("line-0\n"), std::string::npos);
}

TEST(Subprocess, ExtraEnvReachesChild) {
  SubprocessOptions o = shell("echo value=$DVMC_SUBPROCESS_TEST_VAR");
  o.extraEnv.emplace_back("DVMC_SUBPROCESS_TEST_VAR", "marker-42");
  const SubprocessResult r = runSubprocess(o);
  EXPECT_NE(r.stdoutTail.find("value=marker-42"), std::string::npos);
}

TEST(Subprocess, RlimitMemoryKillsOverAllocatingChild) {
  // dd mallocs its block buffer up front: a 256 MiB request under a
  // 64 MiB address-space cap must fail, and the identical uncapped run
  // must succeed (proving the cap, not the command, is what failed).
  SubprocessOptions capped =
      shell("dd if=/dev/zero of=/dev/null bs=256M count=1");
  capped.limits.memoryBytes = 64ull * 1024 * 1024;
  const SubprocessResult r = runSubprocess(capped);
  if (r.status.reason == ExitReason::kSpawnFailed) {
    GTEST_SKIP() << "no dd on PATH";
  }
  EXPECT_FALSE(r.status.clean()) << r.status.describe();

  const SubprocessResult control =
      runSubprocess(shell("dd if=/dev/zero of=/dev/null bs=256M count=1"));
  EXPECT_TRUE(control.status.clean()) << control.status.describe();
}

// --- retry policy ----------------------------------------------------------

TEST(RetryPolicy, DelayIsDeterministicAndBounded) {
  RetryPolicy p;
  p.baseDelayMs = 500;
  p.maxDelayMs = 8000;
  p.seed = 1234;
  EXPECT_EQ(retryDelayMs(p, 7, 1), 0u);  // first attempt never waits
  for (int attempt = 2; attempt <= 6; ++attempt) {
    const std::uint64_t d = retryDelayMs(p, 7, attempt);
    const std::uint64_t raw =
        std::min<std::uint64_t>(500ull << (attempt - 2), 8000);
    EXPECT_GE(d, raw / 2);
    EXPECT_LT(d, raw);
    // Same (seed, key, attempt) -> same delay: a rerun reproduces the
    // schedule.
    EXPECT_EQ(d, retryDelayMs(p, 7, attempt));
  }
  // Different task keys jitter differently (overwhelmingly likely).
  EXPECT_NE(retryDelayMs(p, 7, 4), retryDelayMs(p, 8, 4));
}

TEST(Supervisor, RetriesUntilSuccess) {
  RetryPolicy p;
  p.maxAttempts = 4;
  p.baseDelayMs = 50;
  Supervisor sup(2, p);
  std::vector<std::uint64_t> sleeps;
  sup.sleepMs = [&](std::uint64_t ms) { sleeps.push_back(ms); };

  SupervisedTask task;
  task.name = "flaky";
  task.key = 3;
  task.makeOptions = [](int attempt) {
    return shell(attempt >= 3 ? "exit 0" : "exit 1");
  };
  const std::vector<TaskOutcome> out = sup.run({task});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].succeeded);
  EXPECT_EQ(out[0].attempts, 3);
  EXPECT_TRUE(out[0].last.status.clean());
  ASSERT_EQ(sleeps.size(), 2u);  // before attempts 2 and 3
  EXPECT_EQ(sleeps[0], retryDelayMs(p, 3, 2));
  EXPECT_EQ(sleeps[1], retryDelayMs(p, 3, 3));
}

TEST(Supervisor, ExhaustsRetryBudget) {
  RetryPolicy p;
  p.maxAttempts = 3;
  p.baseDelayMs = 0;  // no waiting in tests
  Supervisor sup(1, p);
  std::vector<bool> willRetrySeen;
  sup.onAttemptDone = [&](std::size_t, int, const SubprocessResult&,
                          bool willRetry) {
    willRetrySeen.push_back(willRetry);
  };
  SupervisedTask task;
  task.makeOptions = [](int) { return shell("exit 1"); };
  const std::vector<TaskOutcome> out = sup.run({task});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].succeeded);
  EXPECT_EQ(out[0].attempts, 3);
  ASSERT_EQ(willRetrySeen.size(), 3u);
  EXPECT_TRUE(willRetrySeen[0]);
  EXPECT_TRUE(willRetrySeen[1]);
  EXPECT_FALSE(willRetrySeen[2]);
}

// --- journal ---------------------------------------------------------------

TEST(Journal, RoundTripAndIdentityValidation) {
  TempDir tmp("journal_roundtrip");
  const std::string path = tmp.str("j.jsonl");
  Json meta = Json::object().set("tool", Json::str("test")).set(
      "seedBase", Json::num(std::uint64_t{42}));

  obs::JournalWriter w;
  std::string err;
  ASSERT_TRUE(w.open(path, meta, {"tool", "seedBase"}, &err)) << err;
  ASSERT_TRUE(w.append(Json::object().set("param", Json::num(1))));
  ASSERT_TRUE(w.append(Json::object().set("param", Json::num(2))));
  EXPECT_EQ(w.appended(), 2u);
  w.close();

  const std::optional<obs::JournalContents> jc = obs::readJournal(path, &err);
  ASSERT_TRUE(jc.has_value()) << err;
  ASSERT_EQ(jc->records.size(), 2u);
  EXPECT_EQ(jc->records[1].find("param")->asInt(), 2);

  // Reopen-to-append validates identity; a different campaign is refused.
  obs::JournalWriter w2;
  Json other = Json::object().set("tool", Json::str("test")).set(
      "seedBase", Json::num(std::uint64_t{999}));
  EXPECT_FALSE(w2.open(path, other, {"tool", "seedBase"}, &err));
  EXPECT_NE(err.find("seedBase"), std::string::npos);

  ASSERT_TRUE(w2.open(path, meta, {"tool", "seedBase"}, &err)) << err;
  EXPECT_EQ(w2.appended(), 2u);  // resumes the count
  ASSERT_TRUE(w2.append(Json::object().set("param", Json::num(3))));
  w2.close();
  EXPECT_EQ(obs::readJournal(path, &err)->records.size(), 3u);
}

TEST(Journal, TornFinalLineIsDroppedAndTrimmedOnReopen) {
  TempDir tmp("journal_torn");
  const std::string path = tmp.str("j.jsonl");
  const Json meta = Json::object().set("tool", Json::str("test"));
  std::string err;
  {
    obs::JournalWriter w;
    ASSERT_TRUE(w.open(path, meta, {"tool"}, &err)) << err;
    ASSERT_TRUE(w.append(Json::object().set("param", Json::num(1))));
  }
  // Simulate a writer killed mid-append: a partial record with no newline.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"param\":2,\"tru";
  }
  const std::optional<obs::JournalContents> jc = obs::readJournal(path, &err);
  ASSERT_TRUE(jc.has_value()) << err;
  EXPECT_EQ(jc->records.size(), 1u);  // the torn record never happened

  // Reopening for append trims the fragment instead of welding the next
  // record onto it.
  obs::JournalWriter w;
  ASSERT_TRUE(w.open(path, meta, {"tool"}, &err)) << err;
  ASSERT_TRUE(w.append(Json::object().set("param", Json::num(3))));
  w.close();
  const std::optional<obs::JournalContents> after =
      obs::readJournal(path, &err);
  ASSERT_TRUE(after.has_value()) << err;
  ASSERT_EQ(after->records.size(), 2u);
  EXPECT_EQ(after->records[1].find("param")->asInt(), 3);
}

// --- campaign end-to-end ---------------------------------------------------

#if defined(DVMC_CAMPAIGN_BIN) && defined(DVMC_INSPECT_BIN)

SubprocessOptions campaign(const std::vector<std::string>& extraArgs,
                           const std::vector<std::pair<std::string,
                                                       std::string>>& env = {}) {
  SubprocessOptions o;
  o.argv = {DVMC_CAMPAIGN_BIN};
  o.argv.insert(o.argv.end(), extraArgs.begin(), extraArgs.end());
  o.extraEnv = env;
  o.deadlineMs = 240'000;
  o.maxCapturedBytes = 256 * 1024;
  return o;
}

std::string quarantineReason(const fs::path& bundle) {
  const std::optional<Json> j = Json::parse(readFile(bundle));
  if (!j) return "<unparseable>";
  const Json* r = j->find("exitReason");
  return r != nullptr ? r->asString() : "<missing>";
}

TEST(CampaignSupervision, ChaosRunLosesNothing) {
  TempDir tmp("chaos");
  // 40 configs; three of them die on their first attempt — one SIGSEGV,
  // one SIGABRT, one infinite-loop hang — exactly the acceptance chaos
  // mix. The campaign must finish exit 0 with every result intact.
  const std::vector<std::string> base = {
      "--configs", "40", "--clean-only", "--jobs", "8",
      "--deadline-sec", "6", "--backoff-ms", "10",
      "--quarantine-dir", tmp.str("q"),
      "--journal", tmp.str("journal.jsonl"),
      "--escape-dir", tmp.str("esc")};
  const SubprocessResult chaos = runSubprocess(
      campaign(base, {{"DVMC_TEST_CRASH_AT", "3=segv,11=abort,17=hang"}}));
  ASSERT_TRUE(chaos.status.clean())
      << chaos.status.describe() << "\n" << chaos.stderrTail;

  // Exactly the three injected offenders were quarantined, each with the
  // right taxonomy, and each config still completed (the journal holds
  // all 40 records — zero results lost).
  EXPECT_EQ(quarantineReason(tmp.path / "q" / "param_3_attempt_1.json"),
            "signaled");
  EXPECT_EQ(quarantineReason(tmp.path / "q" / "param_11_attempt_1.json"),
            "signaled");
  EXPECT_EQ(quarantineReason(tmp.path / "q" / "param_17_attempt_1.json"),
            "timed-out");
  std::size_t bundles = 0;
  for (const auto& e : fs::directory_iterator(tmp.path / "q")) {
    (void)e;
    ++bundles;
  }
  EXPECT_EQ(bundles, 3u);

  std::string err;
  const std::optional<obs::JournalContents> jc =
      obs::readJournal(tmp.str("journal.jsonl"), &err);
  ASSERT_TRUE(jc.has_value()) << err;
  EXPECT_EQ(jc->records.size(), 40u);

  // The summary is bit-identical to a run with no injected crashes:
  // supervision chatter stays on stderr.
  const SubprocessResult calm = runSubprocess(campaign(
      {"--configs", "40", "--clean-only", "--jobs", "8",
       "--escape-dir", tmp.str("esc2")}));
  ASSERT_TRUE(calm.status.clean()) << calm.stderrTail;
  EXPECT_EQ(chaos.stdoutTail, calm.stdoutTail);
}

TEST(CampaignSupervision, RetryExhaustionFailsTheCampaign) {
  TempDir tmp("lost");
  // A config that crashes on EVERY attempt (no attempt gate would need a
  // new hook; instead allow only 1 attempt so the single injected crash
  // exhausts the budget).
  const SubprocessResult r = runSubprocess(campaign(
      {"--configs", "4", "--clean-only", "--jobs", "2", "--attempts", "1",
       "--backoff-ms", "10", "--deadline-sec", "20",
       "--quarantine-dir", tmp.str("q"), "--escape-dir", tmp.str("esc")},
      {{"DVMC_TEST_CRASH_AT", "2=abort"}}));
  EXPECT_EQ(r.status.reason, ExitReason::kNonZeroExit);
  EXPECT_EQ(r.status.exitCode, 1);
  EXPECT_NE(r.stdoutTail.find("lost to retry exhaustion"),
            std::string::npos);
  EXPECT_TRUE(fs::exists(tmp.path / "q" / "param_2_attempt_1.json"));
}

TEST(CampaignSupervision, ResumeProducesBitIdenticalSummary) {
  TempDir tmp("resume");
  const std::vector<std::string> flags = {
      "--configs", "8", "--clean-only", "--jobs", "2", "--backoff-ms", "10",
      "--deadline-sec", "60", "--escape-dir", tmp.str("esc")};

  // Reference: one uninterrupted run.
  std::vector<std::string> ref = flags;
  const SubprocessResult full = runSubprocess(campaign(ref));
  ASSERT_TRUE(full.status.clean()) << full.stderrTail;

  // Interrupted run: the parent hard-exits (as if SIGKILLed) right after
  // the 3rd journal record lands.
  std::vector<std::string> part = flags;
  part.insert(part.end(), {"--journal", tmp.str("journal.jsonl")});
  const SubprocessResult killed =
      runSubprocess(campaign(part, {{"DVMC_TEST_EXIT_AFTER", "3"}}));
  EXPECT_EQ(killed.status.reason, ExitReason::kNonZeroExit);
  EXPECT_EQ(killed.status.exitCode, 3);
  std::string err;
  ASSERT_TRUE(obs::readJournal(tmp.str("journal.jsonl"), &err).has_value())
      << err;
  EXPECT_EQ(obs::readJournal(tmp.str("journal.jsonl"), &err)->records.size(),
            3u);

  // Resume completes the remaining configs and the merged stdout summary
  // is bit-identical to the uninterrupted run.
  std::vector<std::string> res = flags;
  res.insert(res.end(), {"--resume", tmp.str("journal.jsonl")});
  const SubprocessResult resumed = runSubprocess(campaign(res));
  ASSERT_TRUE(resumed.status.clean()) << resumed.stderrTail;
  EXPECT_EQ(resumed.stdoutTail, full.stdoutTail);
  EXPECT_EQ(obs::readJournal(tmp.str("journal.jsonl"), &err)->records.size(),
            8u);
}

TEST(CampaignSupervision, ResumeRefusesForeignJournal) {
  TempDir tmp("foreign");
  const SubprocessResult first = runSubprocess(campaign(
      {"--configs", "2", "--clean-only", "--jobs", "2",
       "--journal", tmp.str("journal.jsonl"),
       "--escape-dir", tmp.str("esc")}));
  ASSERT_TRUE(first.status.clean()) << first.stderrTail;
  // Same journal, different seed base: identity mismatch, usage error.
  const SubprocessResult other = runSubprocess(campaign(
      {"--configs", "2", "--clean-only", "--jobs", "2", "--seed-base", "77",
       "--resume", tmp.str("journal.jsonl"),
       "--escape-dir", tmp.str("esc")}));
  EXPECT_EQ(other.status.reason, ExitReason::kNonZeroExit);
  EXPECT_EQ(other.status.exitCode, 2);
  EXPECT_NE(other.stderrTail.find("different"), std::string::npos);
}

TEST(CampaignSupervision, CrashHandlerFinalizesStatusAsCrashed) {
  TempDir tmp("crashed");
  const SubprocessResult r = runSubprocess(campaign(
      {"--configs", "1", "--clean-only",
       "--status-file", tmp.str("status.json"),
       "--log-json", tmp.str("log.jsonl"),
       "--escape-dir", tmp.str("esc")},
      {{"DVMC_TEST_CRASH_PARENT", "1"}}));
  EXPECT_EQ(r.status.reason, ExitReason::kSignaled);
  EXPECT_EQ(r.status.termSignal, SIGABRT);

  const std::optional<Json> status =
      Json::parse(readFile(tmp.path / "status.json"));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->find("state")->asString(), "crashed");
  EXPECT_EQ(status->find("signalName")->asString(), "SIGABRT");
  // The log ring's final flush: a crash record on the JSONL sink.
  EXPECT_NE(readFile(tmp.path / "log.jsonl").find("fatal signal"),
            std::string::npos);

  // `dvmc_inspect watch` reads it as a finished-but-failed run.
  SubprocessOptions watch;
  watch.argv = {DVMC_INSPECT_BIN, "watch", "--once", tmp.str("status.json")};
  watch.deadlineMs = 30'000;
  const SubprocessResult w = runSubprocess(watch);
  EXPECT_EQ(w.status.reason, ExitReason::kNonZeroExit);
  EXPECT_EQ(w.status.exitCode, 1);
}

TEST(CampaignSupervision, WatchDetectsDeadProducer) {
  TempDir tmp("stale");
  // A snapshot frozen in state "running" whose producer is gone: the
  // watchdog must declare it dead once the heartbeat stops advancing.
  {
    std::ofstream out(tmp.str("status.json"));
    out << "{\"schema\":\"dvmc-status\",\"version\":1,\"generator\":\"t\","
           "\"updatedUnixMs\":1,\"phase\":\"campaign\",\"state\":"
           "\"running\"}\n";
  }
  SubprocessOptions watch;
  watch.argv = {DVMC_INSPECT_BIN, "watch", "--stale-after", "1",
                tmp.str("status.json")};
  watch.deadlineMs = 30'000;
  const SubprocessResult r = runSubprocess(watch);
  EXPECT_EQ(r.status.reason, ExitReason::kNonZeroExit);
  EXPECT_EQ(r.status.exitCode, 3);
  EXPECT_NE(r.stderrTail.find("producer appears dead"), std::string::npos);
}

#endif  // DVMC_CAMPAIGN_BIN && DVMC_INSPECT_BIN

}  // namespace
}  // namespace dvmc
