// Litmus tests on the live machine: the classic two-thread shapes whose
// forbidden/allowed outcomes DEFINE the consistency models. Forbidden
// outcomes must never appear (many seeds, adversarial address placement);
// allowed outcomes must actually appear (the relaxation is real, not an
// artifact of a secretly-too-strong implementation).
//
//   SB (store buffering / Dekker):   T0: X=1; r0=Y   T1: Y=1; r1=X
//       (0,0) forbidden under SC, allowed under TSO/PSO/RMO.
//   MP (message passing):            T0: D=1; F=1    T1: r0=F; r1=D
//       (F=1, D=0) forbidden under SC/TSO, allowed under PSO/RMO
//       (store-store reordering); re-forbidden by an Stbar between the
//       stores and an Membar #LoadLoad between the loads.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "system/system.hpp"
#include "workload/scripted.hpp"

namespace dvmc {
namespace {

// Adversarial placement: each thread's stores are homed at the *other*
// node (slow perform) while its loads are local (fast).
constexpr Addr kX = 0x400040;  // home: node 1
constexpr Addr kY = 0x480000;  // home: node 0
// MP: the data is homed remotely (slow store perform) while the flag is a
// block the writer already owns (instant drain). With the write buffer
// backed up behind remote misses, the owned-first issue policy lets the
// flag overtake the data — the real-hardware PSO reordering shape.
constexpr Addr kD = 0x400040;  // home: node 1 (remote for the writer)
constexpr Addr kF = 0x400080;  // home: node 0 (writer-local)

std::uint64_t init(Addr a) {
  return MemoryStorage::initialPattern(blockAddr(a)).read(blockOffset(a), 8);
}

struct LitmusResult {
  std::uint64_t r0;
  std::uint64_t r1;
  bool operator<(const LitmusResult& o) const {
    return r0 != o.r0 ? r0 < o.r0 : r1 < o.r1;
  }
};

LitmusResult runLitmus(ConsistencyModel model, int jitter,
                       std::vector<Instr> t0, std::vector<Instr> t1,
                       Addr t0LoadAddr, Addr t1LoadAddr) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory, model);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.maxCycles = 2'000'000;
  cfg.programFactory = [=](NodeId n) -> std::unique_ptr<ThreadProgram> {
    std::vector<Instr> p;
    // Pre-warm both variables into both caches, settle, jitter.
    p.push_back(Instr::load(kX));
    p.push_back(Instr::load(kY));
    p.push_back(Instr::load(kF));
    p.push_back(Instr::compute(800));
    p.push_back(Instr::compute(
        static_cast<std::uint16_t>(1 + (jitter * (n + 3)) % 41)));
    const auto& body = n == 0 ? t0 : t1;
    p.insert(p.end(), body.begin(), body.end());
    return std::make_unique<ScriptedProgram>(p);
  };
  System sys(cfg);
  RunResult r = sys.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u) << sys.sink().first().what;
  auto& p0 = static_cast<ScriptedProgram&>(sys.core(0).program());
  auto& p1 = static_cast<ScriptedProgram&>(sys.core(1).program());
  LitmusResult out{0, 0};
  // Normalize: 1 = saw the written value, 0 = saw the initial pattern.
  out.r0 = p0.results().empty()
               ? 0
               : (p0.results()[0].second == init(t0LoadAddr) ? 0 : 1);
  out.r1 = p1.results().empty()
               ? 0
               : (p1.results()[0].second == init(t1LoadAddr) ? 0 : 1);
  return out;
}

// ---------------------------------------------------------------------------
// Store buffering (SB)
// ---------------------------------------------------------------------------

std::set<LitmusResult> sweepSB(ConsistencyModel m, int trials) {
  std::set<LitmusResult> seen;
  for (int t = 0; t < trials; ++t) {
    seen.insert(runLitmus(
        m, t, {Instr::store(kX, 1), Instr::load(kY, 1)},
        {Instr::store(kY, 1), Instr::load(kX, 1)}, kY, kX));
  }
  return seen;
}

TEST(LitmusSB, ScForbidsBothZero) {
  auto seen = sweepSB(ConsistencyModel::kSC, 25);
  EXPECT_EQ(seen.count(LitmusResult{0, 0}), 0u)
      << "SC must not exhibit store buffering";
}

TEST(LitmusSB, TsoExhibitsStoreBuffering) {
  auto seen = sweepSB(ConsistencyModel::kTSO, 25);
  EXPECT_EQ(seen.count(LitmusResult{0, 0}), 1u)
      << "TSO's write buffer must be visible";
}

TEST(LitmusSB, TsoMembarStoreLoadRestoresSC) {
  std::set<LitmusResult> seen;
  for (int t = 0; t < 25; ++t) {
    seen.insert(runLitmus(
        ConsistencyModel::kTSO, t,
        {Instr::store(kX, 1), Instr::membar(membar::kStoreLoad),
         Instr::load(kY, 1)},
        {Instr::store(kY, 1), Instr::membar(membar::kStoreLoad),
         Instr::load(kX, 1)},
        kY, kX));
  }
  EXPECT_EQ(seen.count(LitmusResult{0, 0}), 0u)
      << "Membar #StoreLoad must forbid the SB outcome";
}

// ---------------------------------------------------------------------------
// Message passing (MP)
// ---------------------------------------------------------------------------

/// T1: prewarm the data, wait a swept delay, probe the flag ONCE (a
/// polling loop would cache the flag and steal the writer's ownership,
/// destroying the owned-block fast drain that creates the reordering),
/// and if the flag was up, read the data.
class MpReader final : public ThreadProgram {
 public:
  MpReader(std::uint8_t loadMembarMask, std::uint16_t delay)
      : mask_(loadMembarMask), delay_(delay) {}
  std::optional<Instr> next() override {
    if (waiting_) return std::nullopt;
    switch (state_) {
      case 0:  // prewarm the stale data copy
        waiting_ = true;
        state_ = 1;
        return Instr::load(kD, 3);
      case 2:
        state_ = 9;
        return Instr::compute(delay_);
      case 9:  // dispatch gate: the probe must not execute speculatively
                // before the delay elapses (it would fetch the flag early
                // and steal the writer's ownership); a token-carrying dummy
                // load on a private word stalls dispatch until the delay
                // has fully retired.
        waiting_ = true;
        state_ = 3;
        return Instr::load(0x70000000, 4);
      case 3:  // single timed probe of the flag
        waiting_ = true;
        state_ = 4;
        return Instr::load(kF, 1);
      case 5:
        if (mask_ != 0) {
          state_ = 6;
          return Instr::membar(mask_);
        }
        [[fallthrough]];
      case 6:
        waiting_ = true;
        state_ = 7;
        return Instr::load(kD, 2);
      default:
        return std::nullopt;
    }
  }
  void onResult(std::uint64_t token, std::uint64_t v) override {
    waiting_ = false;
    if (token == 3) {
      state_ = 2;
    } else if (token == 4) {
      state_ = 3;  // delay retired: probe now
    } else if (token == 1) {
      sawFlag_ = (v == 1);
      state_ = sawFlag_ ? 5 : 8;  // flag down: inconclusive trial
    } else {
      sawData_ = (v == 1);
      state_ = 8;
    }
  }
  bool finished() const override { return state_ == 8; }
  std::uint64_t transactionsCompleted() const override {
    return state_ == 8;
  }
  std::unique_ptr<ThreadProgram> clone() const override {
    return std::make_unique<MpReader>(*this);
  }
  bool sawFlag() const { return sawFlag_; }
  bool sawData() const { return sawData_; }

 private:
  std::uint8_t mask_;
  std::uint16_t delay_;
  int state_ = 0;
  bool waiting_ = false;
  bool sawFlag_ = false;
  bool sawData_ = false;
};

/// Runs MP once with the given probe delay. Returns {flagSeen, staleData}.
std::pair<bool, bool> runMP(ConsistencyModel model, std::uint16_t probeDelay,
                            bool writerBarrier, std::uint8_t readerMask) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory, model);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.maxCycles = 4'000'000;
  cfg.cpu.storePrefetch = false;  // let the padding misses really queue
  cfg.programFactory = [=](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) {
      std::vector<Instr> p;
      // Own the flag up front (a reused flag in a real MP loop): the
      // flag store later drains as an owned-block hit while the data
      // store's GetM is still in flight — the PSO reordering window.
      p.push_back(Instr::store(kF, 0));
      // Give the reader time to prewarm its stale data copy.
      p.push_back(Instr::compute(600));
      // Back the write buffer up with remote misses, then the data store.
      for (int b = 0; b < 12; ++b) {
        p.push_back(Instr::store(0x500040 + b * 2 * kBlockSizeBytes, 7));
      }
      p.push_back(Instr::store(kD, 1));
      if (writerBarrier) p.push_back(Instr::stbar());
      p.push_back(Instr::store(kF, 1));
      return std::make_unique<ScriptedProgram>(p);
    }
    return std::make_unique<MpReader>(readerMask, probeDelay);
  };
  System sys(cfg);
  RunResult r = sys.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u) << sys.sink().first().what;
  auto& reader = static_cast<MpReader&>(sys.core(1).program());
  return {reader.sawFlag(), reader.sawFlag() && !reader.sawData()};
}

TEST(LitmusMP, TsoNeverShowsStaleData) {
  // TSO drains the 12 padding misses strictly in order (~5-7k cycles):
  // probe across the whole range, before and after the flag flips.
  int flagSeen = 0;
  for (int t = 0; t < 30; ++t) {
    const auto delay = static_cast<std::uint16_t>(800 + t * 300);
    auto [flag, stale] = runMP(ConsistencyModel::kTSO, delay, false, 0);
    flagSeen += flag;
    EXPECT_FALSE(stale) << "TSO must not pass stale data, delay " << delay;
  }
  EXPECT_GT(flagSeen, 0) << "probe delays never saw the flag: test inert";
}

TEST(LitmusMP, ScNeverShowsStaleData) {
  for (int t = 0; t < 12; ++t) {
    const auto delay = static_cast<std::uint16_t>(800 + t * 700);
    auto [flag, stale] = runMP(ConsistencyModel::kSC, delay, false, 0);
    EXPECT_FALSE(stale) << delay;
  }
}

TEST(LitmusMP, PsoCanShowStaleDataWithoutStbar) {
  // The flag performs as an owned-block hit right after commit (~650);
  // the data's GetM still sits behind the padding queue. Fine probe sweep
  // over the window.
  bool stale = false;
  int flagSeen = 0;
  for (int t = 0; t < 60 && !stale; ++t) {
    const auto delay = static_cast<std::uint16_t>(300 + t * 29);
    auto [flag, s] = runMP(ConsistencyModel::kPSO, delay, false, 0);
    flagSeen += flag;
    stale = s;
  }
  EXPECT_GT(flagSeen, 0);
  EXPECT_TRUE(stale) << "PSO store-store reordering must be observable";
}

TEST(LitmusMP, PsoStbarRestoresMessagePassing) {
  int flagSeen = 0;
  for (int t = 0; t < 40; ++t) {
    const auto delay = static_cast<std::uint16_t>(300 + t * 150);
    auto [flag, stale] =
        runMP(ConsistencyModel::kPSO, delay, /*writerBarrier=*/true, 0);
    flagSeen += flag;
    EXPECT_FALSE(stale) << "Stbar must forbid stale data, delay " << delay;
  }
  EXPECT_GT(flagSeen, 0);
}

TEST(LitmusMP, RmoNeedsBothBarriers) {
  for (int t = 0; t < 30; ++t) {
    const auto delay = static_cast<std::uint16_t>(300 + t * 150);
    auto [flag, stale] = runMP(ConsistencyModel::kRMO, delay,
                               /*writerBarrier=*/true, membar::kLoadLoad);
    EXPECT_FALSE(stale) << delay;
  }
}


// ---------------------------------------------------------------------------
// CoRR (coherence read-read): two program-order loads of the same location
// must not observe values out of coherence order — under EVERY model
// (coherence underpins all of them; Section 3's third invariant).
// ---------------------------------------------------------------------------

class CoRRReader final : public ThreadProgram {
 public:
  std::optional<Instr> next() override {
    if (waiting_ || state_ >= 2) return std::nullopt;
    waiting_ = true;
    return Instr::load(kX, 1 + state_);
  }
  void onResult(std::uint64_t token, std::uint64_t v) override {
    waiting_ = false;
    r_[token - 1] = v;
    ++state_;
  }
  bool finished() const override { return state_ >= 2; }
  std::uint64_t transactionsCompleted() const override {
    return state_ >= 2;
  }
  std::unique_ptr<ThreadProgram> clone() const override {
    return std::make_unique<CoRRReader>(*this);
  }
  std::uint64_t r_[2] = {0, 0};

 private:
  int state_ = 0;
  bool waiting_ = false;
};

class LitmusCoRR : public ::testing::TestWithParam<ConsistencyModel> {};

TEST_P(LitmusCoRR, SecondReadNeverOlderThanFirst) {
  const std::uint64_t initX = init(kX);
  for (int trial = 0; trial < 20; ++trial) {
    SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                              GetParam());
    cfg.numNodes = 2;
    cfg.berEnabled = false;
    cfg.maxCycles = 2'000'000;
    cfg.programFactory = [trial](NodeId n)
        -> std::unique_ptr<ThreadProgram> {
      if (n == 0) {
        return std::make_unique<ScriptedProgram>(std::vector<Instr>{
            Instr::compute(static_cast<std::uint16_t>(50 + trial * 23)),
            Instr::store(kX, 1)});
      }
      return std::make_unique<CoRRReader>();
    };
    System sys(cfg);
    RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.detections, 0u);
    auto& rd = static_cast<CoRRReader&>(sys.core(1).program());
    const bool first = rd.r_[0] != initX;
    const bool second = rd.r_[1] != initX;
    EXPECT_FALSE(first && !second)
        << "coherence violated: new value then old, trial " << trial
        << " under " << modelName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, LitmusCoRR,
                         ::testing::Values(ConsistencyModel::kSC,
                                           ConsistencyModel::kTSO,
                                           ConsistencyModel::kPSO,
                                           ConsistencyModel::kRMO),
                         [](const auto& info) {
                           return std::string(modelName(info.param));
                         });

// ---------------------------------------------------------------------------
// IRIW (independent reads of independent writes): invalidation-based MOSI
// makes stores multi-copy atomic, so the readers can never disagree about
// the write order — certainly required under SC and TSO.
// ---------------------------------------------------------------------------

class IriwReader final : public ThreadProgram {
 public:
  IriwReader(Addr first, Addr second) : a_{first, second} {}
  std::optional<Instr> next() override {
    if (waiting_ || state_ >= 2) return std::nullopt;
    waiting_ = true;
    return Instr::load(a_[state_], 1 + state_);
  }
  void onResult(std::uint64_t token, std::uint64_t v) override {
    waiting_ = false;
    r_[token - 1] = v;
    ++state_;
  }
  bool finished() const override { return state_ >= 2; }
  std::uint64_t transactionsCompleted() const override {
    return state_ >= 2;
  }
  std::unique_ptr<ThreadProgram> clone() const override {
    return std::make_unique<IriwReader>(*this);
  }
  std::uint64_t r_[2] = {0, 0};

 private:
  Addr a_[2];
  int state_ = 0;
  bool waiting_ = false;
};

TEST(LitmusIRIW, ReadersNeverDisagreeOnWriteOrder) {
  const std::uint64_t initX = init(kX);
  const std::uint64_t initY = init(kY);
  for (ConsistencyModel m :
       {ConsistencyModel::kSC, ConsistencyModel::kTSO}) {
    for (int trial = 0; trial < 15; ++trial) {
      SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory, m);
      cfg.numNodes = 4;
      cfg.berEnabled = false;
      cfg.maxCycles = 2'000'000;
      cfg.programFactory = [trial](NodeId n)
          -> std::unique_ptr<ThreadProgram> {
        switch (n) {
          case 0:
            return std::make_unique<ScriptedProgram>(std::vector<Instr>{
                Instr::compute(static_cast<std::uint16_t>(1 + trial * 31)),
                Instr::store(kX, 1)});
          case 1:
            return std::make_unique<ScriptedProgram>(std::vector<Instr>{
                Instr::compute(static_cast<std::uint16_t>(1 + trial * 17)),
                Instr::store(kY, 1)});
          case 2:
            return std::make_unique<IriwReader>(kX, kY);
          default:
            return std::make_unique<IriwReader>(kY, kX);
        }
      };
      System sys(cfg);
      RunResult res = sys.run();
      ASSERT_TRUE(res.completed);
      EXPECT_EQ(res.detections, 0u);
      auto& r2 = static_cast<IriwReader&>(sys.core(2).program());
      auto& r3 = static_cast<IriwReader&>(sys.core(3).program());
      // Forbidden: r2 saw X then not-yet-Y while r3 saw Y then not-yet-X.
      const bool t2Order = r2.r_[0] != initX && r2.r_[1] == initY;
      const bool t3Order = r3.r_[0] != initY && r3.r_[1] == initX;
      EXPECT_FALSE(t2Order && t3Order)
          << "IRIW violation under " << modelName(m) << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace dvmc
