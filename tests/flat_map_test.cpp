// FlatMap (open-addressing hot-path table) unit tests: probing and
// backshift deletion invariants, wraparound chains without tombstones,
// growth rehash, the CET/MET collect-then-erase iteration pattern, and a
// fuzz-style differential test against std::unordered_map.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace dvmc {
namespace {

TEST(FlatMap, EmptyMapBehaves) {
  FlatMap<Addr, int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(0x40), m.end());
  EXPECT_EQ(m.count(0x40), 0u);
  EXPECT_FALSE(m.contains(0x40));
  EXPECT_EQ(m.erase(0x40), 0u);
  EXPECT_EQ(m.begin(), m.end());
  m.clear();  // clear on never-allocated map is a no-op
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, InsertFindEraseRoundTrip) {
  FlatMap<Addr, std::string> m;
  auto [it, inserted] = m.try_emplace(0x100, "a");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 0x100u);
  EXPECT_EQ(it->second, "a");

  auto [it2, inserted2] = m.try_emplace(0x100, "b");
  EXPECT_FALSE(inserted2);            // existing entry wins
  EXPECT_EQ(it2->second, "a");
  EXPECT_EQ(m.size(), 1u);

  m[0x140] = "c";
  EXPECT_EQ(m.at(0x140), "c");
  EXPECT_EQ(m.size(), 2u);

  EXPECT_EQ(m.erase(0x100), 1u);
  EXPECT_EQ(m.find(0x100), m.end());
  EXPECT_EQ(m.at(0x140), "c");
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseByIteratorResumesIteration) {
  FlatMap<Addr, int> m;
  for (Addr a = 0; a < 8; ++a) m.try_emplace(a * 0x40, static_cast<int>(a));
  auto it = m.find(3 * 0x40);
  ASSERT_NE(it, m.end());
  it = m.eraseAndAdvance(it);
  // The returned iterator continues slot-order iteration without revisits
  // of the erased key.
  std::set<Addr> rest;
  for (; it != m.end(); ++it) rest.insert(it->first);
  EXPECT_EQ(rest.count(3 * 0x40), 0u);
  EXPECT_EQ(m.size(), 7u);
  // Plain iterator erase (void, no next-slot scan) removes exactly the
  // pointed-to element.
  auto victim = m.find(5 * 0x40);
  ASSERT_NE(victim, m.end());
  m.erase(victim);
  EXPECT_EQ(m.find(5 * 0x40), m.end());
  EXPECT_EQ(m.size(), 6u);
}

// All keys map to the same home bucket modulo a tiny capacity at least some
// of the time; deleting out of the middle of such a chain must backshift
// the tail so later lookups still succeed (no tombstone, no broken chain).
TEST(FlatMap, BackshiftDeletionKeepsChainsReachable) {
  FlatMap<Addr, int> m;
  std::vector<Addr> keys;
  for (Addr a = 0; a < 12; ++a) keys.push_back(0x1000 + a * 0x40);
  for (Addr k : keys) m.try_emplace(k, 1);

  // Erase every other key, then verify every survivor is still reachable.
  for (std::size_t i = 0; i < keys.size(); i += 2) m.erase(keys[i]);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(m.find(keys[i]), m.end()) << i;
    } else {
      ASSERT_NE(m.find(keys[i]), m.end()) << i;
    }
  }
  // Reinsert the erased ones; chains must absorb them with no leftovers.
  for (std::size_t i = 0; i < keys.size(); i += 2) m.try_emplace(keys[i], 2);
  EXPECT_EQ(m.size(), keys.size());
}

// Hammers a capacity-16 table with keys whose probe chains wrap past the
// end of the array; every mutation step re-verifies full reachability.
TEST(FlatMap, WraparoundProbingWithoutTombstones) {
  Rng rng(0xBADC0FFE);
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t k = rng.below(24);  // tiny keyspace: dense collisions
    if (rng.below(3) == 0) {
      EXPECT_EQ(m.erase(k), ref.erase(k)) << step;
    } else {
      const std::uint64_t v = rng.next();
      m.try_emplace(k, v);
      ref.try_emplace(k, v);
    }
    ASSERT_EQ(m.size(), ref.size()) << step;
    for (const auto& [rk, rv] : ref) {
      auto it = m.find(rk);
      ASSERT_NE(it, m.end()) << step;
      ASSERT_EQ(it->second, rv) << step;
    }
  }
}

TEST(FlatMap, GrowthRehashPreservesContents) {
  FlatMap<Addr, std::uint64_t> m;
  const std::size_t n = 10'000;
  for (Addr a = 0; a < n; ++a) m.try_emplace(a * 0x40, a * 3);
  EXPECT_EQ(m.size(), n);
  for (Addr a = 0; a < n; ++a) {
    auto it = m.find(a * 0x40);
    ASSERT_NE(it, m.end()) << a;
    EXPECT_EQ(it->second, a * 3);
  }
  // Power-of-two capacity with load headroom.
  EXPECT_EQ(m.bucket_count() & (m.bucket_count() - 1), 0u);
  EXPECT_GT(m.bucket_count(), n);
}

TEST(FlatMap, ReservePreventsRehash) {
  FlatMap<Addr, int> m;
  m.reserve(1000);
  const std::size_t cap = m.bucket_count();
  EXPECT_EQ(cap & (cap - 1), 0u);
  for (Addr a = 0; a < 1000; ++a) m.try_emplace(a * 0x40, 0);
  EXPECT_EQ(m.bucket_count(), cap);  // no growth while within the reserve
}

// The CET flush/scrub pattern: iterate to collect keys, then erase them.
// Also the MET pattern: mutate mapped values through iterators in place.
TEST(FlatMap, CollectThenEraseEpochPattern) {
  FlatMap<Addr, std::uint64_t> m;
  for (Addr a = 0; a < 64; ++a) m.try_emplace(0x4000 + a * 0x40, a);

  // In-place mutation through iteration (injectEntryCorruption pattern).
  for (auto& [blk, epoch] : m) epoch += 100;
  EXPECT_EQ(m.find(0x4000)->second, 100u);

  std::vector<Addr> victims;
  for (const auto& [blk, epoch] : m) {
    if (epoch % 2 == 0) victims.push_back(blk);
  }
  for (Addr v : victims) EXPECT_EQ(m.erase(v), 1u);
  EXPECT_EQ(m.size(), 32u);
  for (const auto& [blk, epoch] : m) EXPECT_EQ(epoch % 2, 1u) << blk;
}

TEST(FlatMap, CopyPreservesContentsAndIterationOrder) {
  FlatMap<Addr, std::uint64_t> m;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) m.try_emplace(rng.next() & ~0x3Full, rng.next());
  for (int i = 0; i < 100; ++i) {
    auto it = m.begin();
    m.erase(it->first);
  }

  const FlatMap<Addr, std::uint64_t> copy = m;
  EXPECT_EQ(copy, m);
  // Slot-for-slot copy: iteration order is identical (the fault injector
  // picks targets by iteration order, so snapshots must match).
  auto a = m.begin();
  auto b = copy.begin();
  for (; a != m.end(); ++a, ++b) {
    ASSERT_NE(b, copy.end());
    EXPECT_EQ(a->first, b->first);
  }
  EXPECT_EQ(b, copy.end());
}

TEST(FlatMap, MoveLeavesSourceEmpty) {
  FlatMap<Addr, int> m;
  m.try_emplace(0x40, 1);
  FlatMap<Addr, int> n = std::move(m);
  EXPECT_EQ(n.size(), 1u);
  EXPECT_EQ(m.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  m.try_emplace(0x80, 2);   // moved-from map is reusable
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, MappedValueAddressesStableUntilRehashOrErase) {
  FlatMap<Addr, std::uint64_t> m;
  m.reserve(256);
  std::vector<std::pair<Addr, const std::uint64_t*>> ptrs;
  for (Addr a = 0; a < 200; ++a) {
    auto [it, ins] = m.try_emplace(a * 0x40, a);
    ptrs.emplace_back(a * 0x40, &it->second);
  }
  for (const auto& [k, p] : ptrs) {
    EXPECT_EQ(&m.find(k)->second, p) << k;  // no rehash happened
  }
}

// Differential fuzz: random insert/erase/clear/copy against
// std::unordered_map over a clustered keyspace (block-aligned addresses,
// exactly what the simulator stores).
TEST(FlatMap, FuzzDifferentialAgainstUnorderedMap) {
  Rng rng(0xD1FF);
  FlatMap<Addr, std::uint64_t> m;
  std::unordered_map<Addr, std::uint64_t> ref;
  for (int step = 0; step < 60'000; ++step) {
    const Addr key = blockAddr(rng.below(1 << 14) * kBlockSizeBytes);
    switch (rng.below(10)) {
      case 0:
      case 1:
      case 2: {  // erase
        ASSERT_EQ(m.erase(key), ref.erase(key)) << step;
        break;
      }
      case 3: {  // operator[] overwrite
        const std::uint64_t v = rng.next();
        m[key] = v;
        ref[key] = v;
        break;
      }
      case 4: {  // rare clear
        if (rng.below(500) == 0) {
          m.clear();
          ref.clear();
        }
        break;
      }
      default: {  // try_emplace (keeps existing)
        const std::uint64_t v = rng.next();
        auto [it, ins] = m.try_emplace(key, v);
        auto [rit, rins] = ref.try_emplace(key, v);
        ASSERT_EQ(ins, rins) << step;
        ASSERT_EQ(it->second, rit->second) << step;
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size()) << step;
  }
  // Full-content equivalence at the end.
  for (const auto& [k, v] : ref) {
    auto it = m.find(k);
    ASSERT_NE(it, m.end()) << std::hex << k;
    EXPECT_EQ(it->second, v) << std::hex << k;
  }
  std::size_t n = 0;
  for (const auto& [k, v] : m) {
    ASSERT_EQ(ref.at(k), v) << std::hex << k;
    ++n;
  }
  EXPECT_EQ(n, ref.size());
}

}  // namespace
}  // namespace dvmc
