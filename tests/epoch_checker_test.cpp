// Unit tests for the Cache Coherence checker: CET rule-1 checks, the
// Inform-Epoch pipeline into the MET, the three epoch rules (appropriate
// epochs, no illegal overlap, correct data propagation), open-epoch
// wraparound scrubbing, and 16-bit timestamp wrap behavior.
#include <gtest/gtest.h>

#include <vector>

#include "common/crc16.hpp"
#include "dvmc/cache_epoch_checker.hpp"
#include "dvmc/memory_epoch_checker.hpp"
#include "sim/simulator.hpp"

namespace dvmc {
namespace {

/// A fixed logical clock for driving the MET directly.
class FixedClock final : public LogicalClock {
 public:
  std::uint64_t now() override { return value; }
  std::uint64_t value = 0;
};

struct CheckerFixture : ::testing::Test {
  CheckerFixture()
      : cet(sim, /*node=*/0, cfg, &sink,
            [this](Message m) { sent.push_back(std::move(m)); }),
        met(sim, /*node=*/1, cfg, &sink, clock) {}

  /// Runs the inform pipe by hand: CET messages -> MET.
  void pump() {
    for (Message& m : sent) met.onInform(m);
    sent.clear();
    met.drain();
  }

  DataBlock block(std::uint64_t v) {
    DataBlock d;
    d.write(0, 8, v);
    return d;
  }

  Simulator sim;
  DvmcConfig cfg;
  ErrorSink sink;
  FixedClock clock;
  std::vector<Message> sent;
  CacheEpochChecker cet;
  MemoryEpochChecker met;
};

// ---------------------------------------------------------------------------
// CET rule 1: accesses only in appropriate epochs
// ---------------------------------------------------------------------------

TEST_F(CheckerFixture, AccessInsideEpochIsClean) {
  cet.onEpochBegin(0x1000, /*rw=*/true, block(1), 10);
  cet.onPerformAccess(0x1000, /*isWrite=*/true);
  cet.onPerformAccess(0x1000, /*isWrite=*/false);
  EXPECT_FALSE(sink.any());
}

TEST_F(CheckerFixture, LoadOutsideEpochDetected) {
  cet.onPerformAccess(0x1000, false);
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kCacheCoherence);
}

TEST_F(CheckerFixture, StoreInReadOnlyEpochDetected) {
  cet.onEpochBegin(0x1000, /*rw=*/false, block(1), 10);
  cet.onPerformAccess(0x1000, /*isWrite=*/true);
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kCacheCoherence);
}

TEST_F(CheckerFixture, ReadInReadOnlyEpochIsClean) {
  cet.onEpochBegin(0x1000, false, block(1), 10);
  cet.onPerformAccess(0x1000, false);
  EXPECT_FALSE(sink.any());
}

TEST_F(CheckerFixture, EpochEndWithoutBeginDetected) {
  cet.onEpochEnd(0x1000, block(1), 20);
  EXPECT_TRUE(sink.any());
}

TEST_F(CheckerFixture, DoubleBeginDetected) {
  cet.onEpochBegin(0x1000, true, block(1), 10);
  cet.onEpochBegin(0x1000, false, block(1), 11);
  EXPECT_TRUE(sink.any());
}

// ---------------------------------------------------------------------------
// Inform-Epoch wire format
// ---------------------------------------------------------------------------

TEST_F(CheckerFixture, InformCarriesTimesAndHashes) {
  const DataBlock d0 = block(7);
  const DataBlock d1 = block(8);
  cet.onEpochBegin(0x1000, true, d0, 100);
  cet.onEpochEnd(0x1000, d1, 140);
  ASSERT_EQ(sent.size(), 1u);
  const Message& m = sent[0];
  EXPECT_EQ(m.type, MsgType::kInformEpoch);
  EXPECT_TRUE(m.epoch.readWrite);
  EXPECT_EQ(m.epoch.begin, 100);
  EXPECT_EQ(m.epoch.end, 140);
  EXPECT_EQ(m.epoch.beginHash, hashBlock(d0));
  EXPECT_EQ(m.epoch.endHash, hashBlock(d1));
}

TEST_F(CheckerFixture, ReadOnlyInformReplicatesBeginHash) {
  const DataBlock d = block(7);
  cet.onEpochBegin(0x1000, false, d, 100);
  cet.onEpochEnd(0x1000, d, 120);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].epoch.endHash, sent[0].epoch.beginHash);
}

// ---------------------------------------------------------------------------
// MET rules (a): overlap, (b): data propagation
// ---------------------------------------------------------------------------

TEST_F(CheckerFixture, CleanHandoffSequence) {
  // Memory seeds the entry, then RW -> RO -> RW handoffs with matching
  // hashes and non-overlapping times.
  clock.value = 5;
  const DataBlock init = block(0);
  met.onHomeRequest(0x1000, init);

  const DataBlock v1 = block(11);
  cet.onEpochBegin(0x1000, true, init, 10);
  cet.onEpochEnd(0x1000, v1, 20);  // RW [10,20], wrote v1
  cet.onEpochBegin(0x1000, false, v1, 21);
  cet.onEpochEnd(0x1000, v1, 30);  // RO [21,30]
  cet.onEpochBegin(0x1000, true, v1, 30);
  cet.onEpochEnd(0x1000, block(12), 35);  // RW [30,35]
  pump();
  EXPECT_FALSE(sink.any()) << sink.first().what;
  EXPECT_EQ(met.stats().get("met.informsProcessed"), 3u);
}

TEST_F(CheckerFixture, RwOverlapDetected) {
  clock.value = 0;
  met.onHomeRequest(0x1000, block(0));
  cet.onEpochBegin(0x1000, true, block(0), 10);
  cet.onEpochEnd(0x1000, block(1), 30);  // RW [10,30]
  pump();
  // A second RW epoch beginning at 25 overlaps [10,30].
  Message m;
  m.type = MsgType::kInformEpoch;
  m.src = 2;
  m.addr = 0x1000;
  m.epoch.readWrite = true;
  m.epoch.begin = 25;
  m.epoch.end = 40;
  m.epoch.beginHash = hashBlock(block(1));
  m.epoch.endHash = hashBlock(block(2));
  met.onInform(m);
  met.drain();
  ASSERT_TRUE(sink.any());
  EXPECT_NE(sink.first().what.find("overlap"), std::string::npos);
}

TEST_F(CheckerFixture, RoMayOverlapRo) {
  clock.value = 0;
  met.onHomeRequest(0x1000, block(0));
  const auto h = hashBlock(block(0));
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.type = MsgType::kInformEpoch;
    m.src = static_cast<NodeId>(i);
    m.addr = 0x1000;
    m.epoch.readWrite = false;
    m.epoch.begin = 10;
    m.epoch.end = static_cast<LTime16>(30 + i);
    m.epoch.beginHash = h;
    m.epoch.endHash = h;
    met.onInform(m);
  }
  met.drain();
  EXPECT_FALSE(sink.any());
}

TEST_F(CheckerFixture, RoOverlappingRwDetected) {
  clock.value = 0;
  met.onHomeRequest(0x1000, block(0));
  cet.onEpochBegin(0x1000, true, block(0), 10);
  cet.onEpochEnd(0x1000, block(1), 30);
  pump();
  Message m;
  m.type = MsgType::kInformEpoch;
  m.src = 2;
  m.addr = 0x1000;
  m.epoch.readWrite = false;
  m.epoch.begin = 20;  // inside [10,30]
  m.epoch.end = 40;
  m.epoch.beginHash = hashBlock(block(1));
  m.epoch.endHash = m.epoch.beginHash;
  met.onInform(m);
  met.drain();
  EXPECT_TRUE(sink.any());
}

TEST_F(CheckerFixture, DataPropagationMismatchDetected) {
  clock.value = 0;
  met.onHomeRequest(0x1000, block(0));
  cet.onEpochBegin(0x1000, true, block(0), 10);
  cet.onEpochEnd(0x1000, block(1), 20);  // ended with v1
  pump();
  EXPECT_FALSE(sink.any());
  // Next epoch begins with corrupted data (v2 instead of v1).
  cet.onEpochBegin(0x1000, false, block(2), 25);
  cet.onEpochEnd(0x1000, block(2), 30);
  pump();
  ASSERT_TRUE(sink.any());
  EXPECT_NE(sink.first().what.find("hash"), std::string::npos);
}

TEST_F(CheckerFixture, SeedHashComesFromMemoryImage) {
  clock.value = 3;
  const DataBlock mem = block(123);
  met.onHomeRequest(0x1000, mem);
  // First epoch begins with data matching memory: clean.
  cet.onEpochBegin(0x1000, false, mem, 5);
  cet.onEpochEnd(0x1000, mem, 9);
  pump();
  EXPECT_FALSE(sink.any());
  // A fresh block whose first epoch shows different data: flagged.
  met.onHomeRequest(0x2000, mem);
  cet.onEpochBegin(0x2000, false, block(99), 5);
  cet.onEpochEnd(0x2000, block(99), 9);
  pump();
  EXPECT_TRUE(sink.any());
}

TEST_F(CheckerFixture, SortingQueueReordersInforms) {
  clock.value = 0;
  met.onHomeRequest(0x1000, block(0));
  const auto h = hashBlock(block(0));
  // Two RO informs arrive end-first; the priority queue processes them in
  // begin order so lastROEnd grows monotonically without false alarms.
  Message late;
  late.type = MsgType::kInformEpoch;
  late.src = 2;
  late.addr = 0x1000;
  late.epoch.readWrite = false;
  late.epoch.begin = 30;
  late.epoch.end = 50;
  late.epoch.beginHash = h;
  late.epoch.endHash = h;
  Message early = late;
  early.src = 3;
  early.epoch.begin = 10;
  early.epoch.end = 20;
  met.onInform(late);
  met.onInform(early);
  met.drain();
  EXPECT_FALSE(sink.any());
}

// ---------------------------------------------------------------------------
// 16-bit wraparound
// ---------------------------------------------------------------------------

TEST_F(CheckerFixture, EpochsAcrossWrapBoundaryAreClean) {
  clock.value = 0xFFF0;
  met.onHomeRequest(0x1000, block(0));
  // RW [0xFFF8, 0x0008] wraps; the following RO [0x0009, ...] must not be
  // flagged as overlapping.
  cet.onEpochBegin(0x1000, true, block(0), 0xFFF8);
  cet.onEpochEnd(0x1000, block(1), 0x10008);  // wide time wraps to 8
  cet.onEpochBegin(0x1000, false, block(1), 0x10009);
  cet.onEpochEnd(0x1000, block(1), 0x10010);
  pump();
  EXPECT_FALSE(sink.any()) << sink.first().what;
}

TEST_F(CheckerFixture, WrapOverlapStillDetected) {
  clock.value = 0xFFF0;
  met.onHomeRequest(0x1000, block(0));
  cet.onEpochBegin(0x1000, true, block(0), 0xFFF8);
  cet.onEpochEnd(0x1000, block(1), 0x10008);  // RW [FFF8, 0008]
  pump();
  Message m;
  m.type = MsgType::kInformEpoch;
  m.src = 2;
  m.addr = 0x1000;
  m.epoch.readWrite = true;
  m.epoch.begin = 0xFFFC;  // inside the wrapped RW epoch
  m.epoch.end = 0x0002;
  m.epoch.beginHash = hashBlock(block(1));
  m.epoch.endHash = hashBlock(block(1));
  met.onInform(m);
  met.drain();
  EXPECT_TRUE(sink.any());
}

// ---------------------------------------------------------------------------
// Open-epoch scrubbing
// ---------------------------------------------------------------------------

TEST_F(CheckerFixture, LongEpochAnnouncedOpenAndClosed) {
  cfg.scrubAgeTicks = 16;  // tiny for the test
  CacheEpochChecker smallCet(sim, 0, cfg, &sink,
                             [this](Message m) { sent.push_back(m); });
  smallCet.onEpochBegin(0x1000, true, block(1), 100);
  // Age the checker: later epochs advance lastLtime past the threshold.
  smallCet.onEpochBegin(0x2000, false, block(2), 200);
  sim.run(100'000);  // let the scrub sweep run
  ASSERT_FALSE(sent.empty());
  EXPECT_EQ(sent[0].type, MsgType::kInformOpenEpoch);
  EXPECT_TRUE(sent[0].epoch.readWrite);
  EXPECT_EQ(sent[0].epoch.begin, 100);
  sent.clear();
  // The eventual end now produces a short Inform-Closed-Epoch.
  smallCet.onEpochEnd(0x1000, block(1), 250);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, MsgType::kInformClosedEpoch);
  EXPECT_EQ(sent[0].epoch.end, 250);
}

TEST_F(CheckerFixture, OpenRwEpochBlocksOtherEpochs) {
  clock.value = 0;
  met.onHomeRequest(0x1000, block(0));
  Message open;
  open.type = MsgType::kInformOpenEpoch;
  open.src = 3;
  open.addr = 0x1000;
  open.epoch.readWrite = true;
  open.epoch.begin = 10;
  open.epoch.beginHash = hashBlock(block(0));
  met.onInform(open);
  met.drain();
  EXPECT_FALSE(sink.any());
  // An RO epoch while the RW epoch is open: violation.
  Message ro;
  ro.type = MsgType::kInformEpoch;
  ro.src = 2;
  ro.addr = 0x1000;
  ro.epoch.readWrite = false;
  ro.epoch.begin = 20;
  ro.epoch.end = 25;
  ro.epoch.beginHash = hashBlock(block(0));
  ro.epoch.endHash = ro.epoch.beginHash;
  met.onInform(ro);
  met.drain();
  EXPECT_TRUE(sink.any());
}

TEST_F(CheckerFixture, ClosedEpochReleasesOpenState) {
  clock.value = 0;
  met.onHomeRequest(0x1000, block(0));
  Message open;
  open.type = MsgType::kInformOpenEpoch;
  open.src = 3;
  open.addr = 0x1000;
  open.epoch.readWrite = true;
  open.epoch.begin = 10;
  open.epoch.beginHash = hashBlock(block(0));
  met.onInform(open);
  met.drain();
  Message closed;
  closed.type = MsgType::kInformClosedEpoch;
  closed.src = 3;
  closed.addr = 0x1000;
  closed.epoch.readWrite = true;
  closed.epoch.end = 30;
  met.onInform(closed);
  // After the close, a new RW epoch beginning at 31 is clean — and the
  // data check is skipped (the closed-inform carries no end hash).
  Message rw;
  rw.type = MsgType::kInformEpoch;
  rw.src = 2;
  rw.addr = 0x1000;
  rw.epoch.readWrite = true;
  rw.epoch.begin = 31;
  rw.epoch.end = 40;
  rw.epoch.beginHash = 0xDEAD;  // would mismatch if checked
  rw.epoch.endHash = 0xBEEF;
  met.onInform(rw);
  met.drain();
  EXPECT_FALSE(sink.any());
}

TEST_F(CheckerFixture, MetResetClearsState) {
  clock.value = 0;
  met.onHomeRequest(0x1000, block(0));
  EXPECT_EQ(met.metEntries(), 1u);
  met.reset();
  EXPECT_EQ(met.metEntries(), 0u);
}

}  // namespace
}  // namespace dvmc
