// Feature tests for the system layer: automatic recovery, write-buffer
// coalescing, MET entry eviction, traffic classification, logical clocks,
// and L1 inclusion.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coherence/logical_clock.hpp"
#include "faults/injector.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"
#include "workload/scripted.hpp"

namespace dvmc {
namespace {

// ---------------------------------------------------------------------------
// Automatic recovery
// ---------------------------------------------------------------------------

TEST(AutoRecovery, DetectionTriggersRollbackAndCompletion) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 200;
  cfg.autoRecover = true;
  cfg.dvmc.membarInjectionPeriod = 20'000;
  cfg.ber.interval = 10'000;
  cfg.maxCycles = 50'000'000;
  System sys(cfg);
  FaultInjector inj(sys, 7);
  sys.runUntil([&] { return sys.sim().now() >= 30'000; });
  ASSERT_TRUE(inj.inject(FaultType::kMsgDrop));
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.detections, 1u);
  EXPECT_GE(r.recoveries, 1u);
  EXPECT_EQ(r.unrecoverable, 0u);
}

TEST(AutoRecovery, SurvivesRepeatedFaults) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kApache;
  cfg.targetTransactions = 300;
  cfg.autoRecover = true;
  cfg.dvmc.membarInjectionPeriod = 20'000;
  cfg.ber.interval = 10'000;
  cfg.maxCycles = 100'000'000;
  System sys(cfg);
  FaultInjector inj(sys, 21);
  for (int i = 0; i < 3 && !sys.allCoresDone(); ++i) {
    sys.runUntil([&, until = sys.sim().now() + 50'000] {
      return sys.sim().now() >= until;
    });
    inj.inject(FaultType::kMsgDataCorrupt);
  }
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.unrecoverable, 0u);
}

// ---------------------------------------------------------------------------
// Write-buffer coalescing
// ---------------------------------------------------------------------------

TEST(WbCoalescing, RepeatedSameWordStoresCoalesceUnderPso) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kPSO);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.maxCycles = 3'000'000;
  std::vector<Instr> prog;
  for (int i = 0; i < 30; ++i) prog.push_back(Instr::store(0x400000, i));
  prog.push_back(Instr::load(0x400000, 1));
  cfg.programFactory = [prog](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) return std::make_unique<ScriptedProgram>(prog);
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
  };
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  EXPECT_GT(sys.core(0).stats().get("cpu.wbCoalesced"), 0u);
  auto& p = static_cast<ScriptedProgram&>(sys.core(0).program());
  EXPECT_EQ(p.results()[0].second, 29u);  // latest value survives
}

TEST(WbCoalescing, NeverAppliedToTsoOrderedStores) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.maxCycles = 3'000'000;
  std::vector<Instr> prog;
  for (int i = 0; i < 30; ++i) prog.push_back(Instr::store(0x400000, i));
  cfg.programFactory = [prog](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) return std::make_unique<ScriptedProgram>(prog);
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
  };
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  EXPECT_EQ(sys.core(0).stats().get("cpu.wbCoalesced"), 0u);
}

TEST(WbCoalescing, DisabledByConfig) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kPSO);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.cpu.wbCoalescing = false;
  cfg.maxCycles = 3'000'000;
  std::vector<Instr> prog;
  for (int i = 0; i < 20; ++i) prog.push_back(Instr::store(0x400000, i));
  cfg.programFactory = [prog](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) return std::make_unique<ScriptedProgram>(prog);
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
  };
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  EXPECT_EQ(sys.core(0).stats().get("cpu.wbCoalesced"), 0u);
}

// ---------------------------------------------------------------------------
// MET entry eviction (paper: entries only for blocks present in some cache)
// ---------------------------------------------------------------------------

TEST(MetEviction, WritebackOfLastCopyEvictsEntry) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.l2 = {2, 2};
  cfg.l1 = {1, 1};
  cfg.maxCycles = 3'000'000;
  constexpr Addr kBlk = 0x400000;  // home: node 0
  std::vector<Instr> prog = {Instr::store(kBlk, 1)};
  for (int i = 1; i <= 8; ++i) {
    prog.push_back(Instr::load(kBlk + i * 2 * kBlockSizeBytes));
  }
  cfg.programFactory = [prog](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) return std::make_unique<ScriptedProgram>(prog);
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
  };
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  // The eviction inform rests in the MET's sorting queue; let the queue
  // drain before checking that the entry went away.
  sys.sim().run(sys.sim().now() + 30'000);
  NodeId home = MemoryMap{2}.homeOf(kBlk);
  EXPECT_GT(sys.met(home)->stats().get("met.entryEvicted"), 0u);
  EXPECT_GT(sys.met(home)->peakMetEntries(), 0u);
}

TEST(MetEviction, ReaccessReseedsCleanly) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.l2 = {2, 2};
  cfg.l1 = {1, 1};
  cfg.maxCycles = 3'000'000;
  constexpr Addr kBlk = 0x400000;
  std::vector<Instr> prog = {Instr::store(kBlk, 5)};
  for (int i = 1; i <= 8; ++i) {
    prog.push_back(Instr::load(kBlk + i * 2 * kBlockSizeBytes));
  }
  prog.push_back(Instr::load(kBlk, 1));  // refetch after eviction
  cfg.programFactory = [prog](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) return std::make_unique<ScriptedProgram>(prog);
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
  };
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  // The re-seeded entry must match the written-back data: no hash
  // violation on the fresh epoch.
  EXPECT_EQ(r.detections, 0u);
  auto& p = static_cast<ScriptedProgram&>(sys.core(0).program());
  EXPECT_EQ(p.results()[0].second, 5u);
}

// ---------------------------------------------------------------------------
// Checker-hardware faults: false positives only, never incorrectness
// ---------------------------------------------------------------------------

TEST(CheckerFaults, CetCorruptionCausesFalsePositiveOnly) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 200;
  cfg.autoRecover = true;  // the false positive triggers a recovery
  cfg.ber.interval = 10'000;
  cfg.maxCycles = 50'000'000;
  System sys(cfg);
  FaultInjector inj(sys, 99);
  sys.runUntil([&] { return sys.sim().now() >= 30'000; });
  ASSERT_TRUE(inj.inject(FaultType::kCheckerCetCorrupt));
  RunResult r = sys.runUntil([] { return false; });
  // The corrupted hash eventually reaches the MET inside an Inform-Epoch
  // and fails the data-propagation check: an unnecessary recovery, after
  // which the workload still completes correctly (the paper's claim).
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.detections, 1u) << "corruption never surfaced";
  EXPECT_GE(r.recoveries, 1u);
  EXPECT_EQ(r.unrecoverable, 0u);
}

// ---------------------------------------------------------------------------
// Traffic classification
// ---------------------------------------------------------------------------

TEST(TrafficClasses, InformAndCkptBytesAccounted) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 100;
  RunResult r = runOnce(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.informBytes, 0u);
  EXPECT_GT(r.ckptBytes, 0u);
  EXPECT_GT(r.coherenceBytes, r.informBytes);
  EXPECT_EQ(r.totalNetBytes, r.coherenceBytes + r.informBytes + r.ckptBytes);
}

TEST(TrafficClasses, UnprotectedHasNoCheckerTraffic) {
  SystemConfig cfg = SystemConfig::unprotected(Protocol::kDirectory,
                                               ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 100;
  RunResult r = runOnce(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.informBytes, 0u);
  EXPECT_EQ(r.ckptBytes, 0u);
}

TEST(TrafficClasses, Classification) {
  EXPECT_EQ(trafficClassOf(MsgType::kGetS), TrafficClass::kCoherence);
  EXPECT_EQ(trafficClassOf(MsgType::kData), TrafficClass::kCoherence);
  EXPECT_EQ(trafficClassOf(MsgType::kSnpData), TrafficClass::kCoherence);
  EXPECT_EQ(trafficClassOf(MsgType::kInformEpoch), TrafficClass::kInform);
  EXPECT_EQ(trafficClassOf(MsgType::kInformOpenEpoch), TrafficClass::kInform);
  EXPECT_EQ(trafficClassOf(MsgType::kCkptLog), TrafficClass::kCkpt);
}

// ---------------------------------------------------------------------------
// Logical clocks
// ---------------------------------------------------------------------------

TEST(LogicalClocks, PhysicalClockDividesAndSkews) {
  Simulator sim;
  PhysicalLogicalClock a(sim, 16, 0);
  PhysicalLogicalClock b(sim, 16, 3);
  EXPECT_EQ(a.now(), 0u);
  sim.schedule(100, [] {});
  sim.run();
  EXPECT_EQ(a.now(), 100u / 16);
  EXPECT_EQ(b.now(), (100u + 3) / 16);
  // Causality bound: with skew < min network latency the reader can never
  // observe a smaller time than the writer did earlier.
  EXPECT_GE(b.now() + 1, a.now());
}

TEST(LogicalClocks, CountingClockTicks) {
  CountingClock c;
  EXPECT_EQ(c.now(), 0u);
  c.tick();
  c.tick();
  EXPECT_EQ(c.now(), 2u);
  c.tickTo(10);
  EXPECT_EQ(c.now(), 10u);
  c.tickTo(5);  // never goes backwards
  EXPECT_EQ(c.now(), 10u);
}

// ---------------------------------------------------------------------------
// L1 inclusion
// ---------------------------------------------------------------------------

TEST(L1Inclusion, InvalidationDropsL1Copy) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.maxCycles = 3'000'000;
  constexpr Addr kBlk = 0x400000;
  cfg.programFactory = [](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) {
      // Load twice (second hits L1), then wait for the remote writer.
      return std::make_unique<ScriptedProgram>(std::vector<Instr>{
          Instr::load(kBlk), Instr::load(kBlk), Instr::compute(5000)});
    }
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{
        Instr::compute(1500), Instr::store(kBlk, 1)});
  };
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.detections, 0u);
  // After node 1's store, node 0's L1 must not hold the stale block.
  CacheLine* l1line = sys.hierarchy(0).l1().find(kBlk);
  EXPECT_TRUE(l1line == nullptr || !l1line->valid);
}

TEST(L1Inclusion, L1HitsReduceL2Pressure) {
  // A dependence-chained pointer-chase: each load is emitted only after
  // the previous one's value came back, so each sees the prior refill
  // (the OoO core would otherwise issue all fifty before the first lands).
  class LoadChain final : public ThreadProgram {
   public:
    std::optional<Instr> next() override {
      if (waiting_ || done_ >= 50) return std::nullopt;
      waiting_ = true;
      return Instr::load(0x400000, 1);
    }
    void onResult(std::uint64_t, std::uint64_t) override {
      waiting_ = false;
      ++done_;
    }
    bool finished() const override { return done_ >= 50; }
    std::uint64_t transactionsCompleted() const override { return done_; }
    std::unique_ptr<ThreadProgram> clone() const override {
      return std::make_unique<LoadChain>(*this);
    }

   private:
    bool waiting_ = false;
    int done_ = 0;
  };

  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 2;
  cfg.berEnabled = false;
  cfg.maxCycles = 3'000'000;
  cfg.programFactory = [](NodeId n) -> std::unique_ptr<ThreadProgram> {
    if (n == 0) return std::make_unique<LoadChain>();
    return std::make_unique<ScriptedProgram>(std::vector<Instr>{});
  };
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  const auto& st = sys.hierarchy(0).stats();
  EXPECT_GT(st.get("l1.hit"), 40u);
  EXPECT_LE(st.get("l1.miss"), 5u);
}

}  // namespace
}  // namespace dvmc
