// Observability subsystem tests: typed metric registry (registration,
// snapshot, deterministic merge), event-tracer ring semantics, Chrome
// trace_event / run-report JSON well-formedness, and the end-to-end wiring
// through a real System run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>
#include <vector>

#include "obs/forensics.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"

namespace dvmc {
namespace {

// --- metric registry ------------------------------------------------------

TEST(MetricSet, CounterRegistrationAndIncrement) {
  MetricSet set;
  Counter a = set.counter("x.alpha");
  Counter b = set.counter("x.beta");
  a.inc();
  a.inc(4);
  b.inc();
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(set.get("x.alpha"), 5u);
  EXPECT_EQ(set.get("x.beta"), 1u);
  EXPECT_EQ(set.get("x.missing"), 0u);
}

TEST(MetricSet, ReRegisteringReturnsSameSlot) {
  MetricSet set;
  Counter a = set.counter("dup");
  Counter b = set.counter("dup");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(set.get("dup"), 5u);
  EXPECT_EQ(set.all().size(), 1u);
}

TEST(MetricSet, AllReturnsNameSortedScalars) {
  MetricSet set;
  set.counter("z.last").inc(3);
  set.counter("a.first").inc(1);
  Gauge g = set.gauge("m.level");
  g.set(9);
  const auto all = set.all();
  ASSERT_EQ(all.size(), 4u);  // two counters + gauge + gauge peak
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(all.front().first, "a.first");
  EXPECT_EQ(all.back().first, "z.last");
  EXPECT_EQ(all.back().second, 3u);
}

TEST(MetricSet, FindScalarResolvesStableSlots) {
  MetricSet set;
  Counter c = set.counter("hits");
  Gauge g = set.gauge("depth");
  const std::uint64_t* hits = set.findScalar("hits");
  const std::uint64_t* depth = set.findScalar("depth");
  const std::uint64_t* peak = set.findScalar("depth.peak");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(depth, nullptr);
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(set.findScalar("absent"), nullptr);
  c.inc(7);
  g.set(4);
  g.set(2);
  // Registering more metrics must not move the resolved slots.
  for (int i = 0; i < 64; ++i) {
    set.counter("filler" + std::to_string(i));
  }
  EXPECT_EQ(*hits, 7u);
  EXPECT_EQ(*depth, 2u);
  EXPECT_EQ(*peak, 4u);
}

TEST(MetricSet, GaugeTracksPeak) {
  MetricSet set;
  Gauge g = set.gauge("level");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3u);
  EXPECT_EQ(g.peak(), 7u);
  EXPECT_EQ(set.get("level"), 3u);
  EXPECT_EQ(set.get("level.peak"), 7u);
}

TEST(MetricSet, HistogramRecordsDistribution) {
  MetricSet set;
  Histogram h = set.histogram("lat");
  h.add(1);
  h.add(2);
  h.add(1000);
  EXPECT_EQ(h.dist().count(), 3u);
  EXPECT_EQ(h.dist().maxValue(), 1000u);
  EXPECT_EQ(set.get("lat"), 3u);  // histograms resolve to their count
  EXPECT_NE(set.findHistogram("lat"), nullptr);
  EXPECT_EQ(set.findHistogram("nope"), nullptr);
}

TEST(MetricSet, HandlesStayValidAsRegistryGrows) {
  MetricSet set;
  Counter first = set.counter("c0");
  std::vector<Counter> more;
  for (int i = 1; i < 200; ++i) {
    more.push_back(set.counter("c" + std::to_string(i)));
  }
  first.inc(42);  // deque-backed slots: no reallocation invalidation
  EXPECT_EQ(set.get("c0"), 42u);
}

TEST(MetricSnapshot, SnapshotAndPrefix) {
  MetricSet set;
  set.counter("hits").inc(10);
  Gauge g = set.gauge("open");
  g.set(2);

  MetricSnapshot flat;
  set.snapshotInto(flat);
  EXPECT_EQ(flat.value("hits"), 10u);
  EXPECT_EQ(flat.value("open"), 2u);
  EXPECT_EQ(flat.value("open.peak"), 2u);

  MetricSnapshot scoped;
  set.snapshotInto(scoped, "node3/");
  EXPECT_EQ(scoped.value("node3/hits"), 10u);
  EXPECT_EQ(scoped.value("hits"), 0u);
}

TEST(MetricSnapshot, MergeSumsCountersAndHistograms) {
  MetricSet a;
  a.counter("n").inc(3);
  a.histogram("h").add(4);
  MetricSet b;
  b.counter("n").inc(5);
  b.counter("only_b").inc(1);
  b.histogram("h").add(64);

  MetricSnapshot sa, sb;
  a.snapshotInto(sa);
  b.snapshotInto(sb);
  sa.merge(sb);
  EXPECT_EQ(sa.value("n"), 8u);
  EXPECT_EQ(sa.value("only_b"), 1u);
  EXPECT_EQ(sa.histograms.at("h").count(), 2u);
  EXPECT_EQ(sa.histograms.at("h").maxValue(), 64u);
  EXPECT_EQ(sa.histograms.at("h").sum(), 68u);
}

TEST(MetricSnapshot, MergeIsOrderIndependent) {
  MetricSnapshot parts[3];
  for (int i = 0; i < 3; ++i) {
    MetricSet s;
    s.counter("k").inc(static_cast<std::uint64_t>(i + 1));
    s.histogram("h").add(static_cast<std::uint64_t>(1) << i);
    s.snapshotInto(parts[i]);
  }
  MetricSnapshot fwd = parts[0];
  fwd.merge(parts[1]);
  fwd.merge(parts[2]);
  MetricSnapshot rev = parts[2];
  rev.merge(parts[1]);
  rev.merge(parts[0]);
  EXPECT_TRUE(fwd == rev);
  EXPECT_EQ(fwd.value("k"), 6u);
}

// --- event tracer ---------------------------------------------------------

TEST(EventTracer, RecordsInstantsAndSpans) {
  EventTracer t(16);
  t.instant(100, TraceKind::kDetection, "det", /*node=*/3, /*addr=*/0x40);
  t.span(200, 260, TraceKind::kEpoch, "epoch", /*node=*/1, 0x80, /*arg=*/7);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(0).ts, 100u);
  EXPECT_EQ(t.at(0).dur, 0u);
  EXPECT_EQ(t.at(0).node, 3u);
  EXPECT_EQ(t.at(1).ts, 200u);
  EXPECT_EQ(t.at(1).dur, 60u);
  EXPECT_EQ(t.at(1).arg, 7u);
}

TEST(EventTracer, RingWrapsOverwritingOldest) {
  EventTracer t(4);
  for (Cycle c = 0; c < 10; ++c) {
    t.instant(c, TraceKind::kCpu, "e", 0);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  // Oldest-first iteration yields the newest four timestamps in order.
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.at(i).ts, 6u + i);
  }
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(EventTracer, ChromeJsonShape) {
  EventTracer t(8);
  t.span(10, 30, TraceKind::kEpoch, "cet.epochRW", 2, 0x1234, 9);
  t.instant(40, TraceKind::kCheckpoint, "ber.checkpoint", 0);
  std::ostringstream os;
  t.writeChromeJson(os);
  const std::string j = os.str();
  // Structural markers of the trace_event JSON-object format.
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);   // span
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);   // instant
  EXPECT_NE(j.find("\"dur\":20"), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"epoch\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(j.find("\"tid\":2"), std::string::npos);      // tid = node
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.at(j.find_last_not_of('\n')), '}');
}

// --- JSON builder + report envelope ---------------------------------------

TEST(Json, BuilderShapesAndEscaping) {
  Json o = Json::object();
  o.set("s", Json::str("a\"b\\c\n"));
  o.set("u", Json::num(std::uint64_t{18446744073709551615ull}));
  o.set("d", Json::num(0.5));
  o.set("b", Json::boolean(true));
  Json arr = Json::array();
  arr.push(Json::num(1));
  arr.push(Json());
  o.set("a", std::move(arr));
  const std::string s = o.dump();
  EXPECT_EQ(s,
            "{\"s\":\"a\\\"b\\\\c\\n\",\"u\":18446744073709551615,"
            "\"d\":0.5,\"b\":true,\"a\":[1,null]}");
}

TEST(Json, ParserRoundTripsWriterOutput) {
  Json o = Json::object();
  o.set("s", Json::str("a\"b\\c\n"));
  o.set("u", Json::num(std::uint64_t{18446744073709551615ull}));
  o.set("i", Json::num(std::int64_t{-42}));
  o.set("d", Json::num(0.5));
  o.set("b", Json::boolean(true));
  o.set("n", Json());
  Json arr = Json::array();
  arr.push(Json::num(1));
  arr.push(Json::object().set("k", Json::str("v")));
  o.set("a", std::move(arr));

  std::string err;
  std::optional<Json> back = Json::parse(o.dump(2), &err);
  ASSERT_TRUE(back.has_value()) << err;
  // Re-dumping the parsed value reproduces the original byte-for-byte:
  // order, number formatting, and escapes all survive.
  EXPECT_EQ(back->dump(), o.dump());
  EXPECT_EQ(back->find("s")->asString(), "a\"b\\c\n");
  EXPECT_EQ(back->find("u")->asUint(), 18446744073709551615ull);
  EXPECT_EQ(back->find("i")->asInt(), -42);
  EXPECT_EQ(back->find("d")->asDouble(), 0.5);
  EXPECT_TRUE(back->find("b")->asBool());
  EXPECT_TRUE(back->find("n")->isNull());
  EXPECT_EQ(back->find("a")->at(1).find("k")->asString(), "v");
}

TEST(Json, ParserAcceptsStandardJson) {
  std::optional<Json> j = Json::parse(
      " { \"x\" : [ 1 , 2.5e2 , \"\\u0041\\t\" , false ] } ");
  ASSERT_TRUE(j.has_value());
  const Json* x = j->find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->at(0).asUint(), 1u);
  EXPECT_EQ(x->at(1).asDouble(), 250.0);
  EXPECT_EQ(x->at(2).asString(), "A\t");
  EXPECT_FALSE(x->at(3).asBool(true));
}

TEST(Json, ParserRejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(Json::parse("", &err).has_value());
  EXPECT_FALSE(Json::parse("{", &err).has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1,}", &err).has_value());
  EXPECT_FALSE(Json::parse("[1 2]", &err).has_value());
  EXPECT_FALSE(Json::parse("nul", &err).has_value());
  EXPECT_FALSE(Json::parse("\"unterminated", &err).has_value());
  // Trailing garbage after a complete document is an error, with offset.
  EXPECT_FALSE(Json::parse("{} x", &err).has_value());
  EXPECT_NE(err.find("offset"), std::string::npos);
}

TEST(Json, ParserEnforcesNestingDepthLimit) {
  // 256 levels parse; one more is a clean error (with the byte offset of
  // the offending bracket), not a parser-stack overflow.
  const std::string ok(256, '[');
  const std::string okClose(256, ']');
  EXPECT_TRUE(Json::parse(ok + okClose).has_value());

  std::string err;
  const std::string deep(257, '[');
  const std::string deepClose(257, ']');
  EXPECT_FALSE(Json::parse(deep + deepClose, &err).has_value());
  EXPECT_NE(err.find("nesting too deep"), std::string::npos);
  EXPECT_NE(err.find("offset"), std::string::npos);

  // Same ceiling through object nesting, and a hostile unterminated ramp
  // (the original overflow shape) also fails cleanly.
  std::string objDeep;
  for (int i = 0; i < 300; ++i) objDeep += "{\"k\":";
  EXPECT_FALSE(Json::parse(objDeep, &err).has_value());
  EXPECT_FALSE(Json::parse(std::string(100000, '['), &err).has_value());
}

TEST(Json, SafeAccessorsNeverAbort) {
  const Json j = Json::object();
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_TRUE(j.at(99).isNull());   // out-of-range -> shared null
  EXPECT_EQ(j.at(99).asUint(7), 7u);
  EXPECT_EQ(Json::str("abc").asUint(3), 3u);  // wrong type -> fallback
  EXPECT_EQ(Json().size(), 0u);
}

TEST(RunReport, EnvelopeCarriesSchemaAndVersion) {
  Json runs = Json::array();
  runs.push(Json::object().set("kind", Json::str("test")));
  const std::string s = obs::reportEnvelope(std::move(runs)).dump();
  EXPECT_NE(s.find("\"schema\":\"dvmc-run-report\""), std::string::npos);
  EXPECT_NE(s.find("\"version\":2"), std::string::npos);
  EXPECT_NE(s.find("\"runs\":["), std::string::npos);
  // v2 adds the host-resource section and a build-identity generator.
  EXPECT_NE(s.find("\"resource\":{"), std::string::npos);
  EXPECT_NE(s.find("\"peakRssBytes\""), std::string::npos);
  EXPECT_NE(s.find("\"generator\":\"dvmc "), std::string::npos);
}

TEST(RunReport, RunResultSerializationIncludesMetrics) {
  RunResult r;
  r.completed = true;
  r.cycles = 1234;
  MetricSet s;
  s.counter("cpu.retired").inc(99);
  s.histogram("met.informSortResidence").add(6000);
  s.snapshotInto(r.metrics);
  const std::string j = toJson(r).dump();
  EXPECT_NE(j.find("\"completed\":true"), std::string::npos);
  EXPECT_NE(j.find("\"cycles\":1234"), std::string::npos);
  EXPECT_NE(j.find("\"cpu.retired\":99"), std::string::npos);
  EXPECT_NE(j.find("\"met.informSortResidence\""), std::string::npos);
  EXPECT_NE(j.find("\"buckets\""), std::string::npos);
}

TEST(RunReport, ParseObsFlagsStripsAndStores) {
  obs::resetObs();
  const char* raw[] = {"prog",         "keep1", "--trace=/tmp/t.json",
                       "--report-json", "/tmp/r.json", "--trace-capacity=128",
                       "keep2",        nullptr};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = obs::parseObsFlags(7, argv.data());
  EXPECT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "keep1");
  EXPECT_STREQ(argv[2], "keep2");
  EXPECT_EQ(obs::options().traceFile, "/tmp/t.json");
  EXPECT_EQ(obs::options().reportJsonFile, "/tmp/r.json");
  EXPECT_EQ(obs::options().traceCapacity, 128u);
  EXPECT_TRUE(obs::reportingActive());
  EXPECT_NE(obs::activeTracer(), nullptr);
  obs::resetObs();
  EXPECT_FALSE(obs::reportingActive());
}

TEST(RunReport, ParseObsFlagsStoresForensicsAndSampling) {
  obs::resetObs();
  const char* raw[] = {"prog",
                       "--forensics=/tmp/f.json",
                       "--forensics-window=32",
                       "--sample-every=500",
                       "--sample-capacity=16",
                       nullptr};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = obs::parseObsFlags(5, argv.data());
  EXPECT_EQ(argc, 1);
  EXPECT_EQ(obs::options().forensicsFile, "/tmp/f.json");
  EXPECT_EQ(obs::options().forensicsWindow, 32u);
  EXPECT_EQ(obs::options().sampleEvery, 500u);
  EXPECT_EQ(obs::options().sampleCapacity, 16u);
  ForensicsRecorder* rec = obs::activeForensics();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->config().windowEvents, 32u);
  obs::resetObs();
  EXPECT_EQ(obs::options().forensicsFile, "");
}

TEST(RunReport, ParsePositiveCountRejectsBadInput) {
  std::uint64_t v = 0;
  EXPECT_TRUE(obs::parsePositiveCount("1", &v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(obs::parsePositiveCount("65536", &v));
  EXPECT_EQ(v, 65536u);
  EXPECT_FALSE(obs::parsePositiveCount("0", &v));      // zero capacity
  EXPECT_FALSE(obs::parsePositiveCount("", &v));       // empty
  EXPECT_FALSE(obs::parsePositiveCount("12x", &v));    // non-numeric tail
  EXPECT_FALSE(obs::parsePositiveCount("-5", &v));     // sign
  EXPECT_FALSE(obs::parsePositiveCount("1e4", &v));    // not plain decimal
  EXPECT_FALSE(obs::parsePositiveCount("99999999999999999999", &v));  // 2^64+
}

TEST(RunReport, ValidateWritablePathReportsUnwritable) {
  EXPECT_EQ(obs::validateWritablePath("/tmp/dvmc_obs_path_probe.json"), "");
  const std::string err =
      obs::validateWritablePath("/nonexistent-dir/x/y/z.json");
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("/nonexistent-dir/x/y/z.json"), std::string::npos);
  std::remove("/tmp/dvmc_obs_path_probe.json");
}

// --- time-series ring -----------------------------------------------------

TEST(TimeSeries, RingKeepsNewestRows) {
  TimeSeries ts({"a", "b"}, /*capacity=*/3);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ts.sample(i * 100, {i, i * 10});
  }
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.recorded(), 5u);
  EXPECT_EQ(ts.dropped(), 2u);
  // Oldest-first access sees rows 3, 4, 5.
  EXPECT_EQ(ts.cycleAt(0), 300u);
  EXPECT_EQ(ts.cycleAt(2), 500u);
  EXPECT_EQ(ts.valueAt(0, 0), 3u);
  EXPECT_EQ(ts.valueAt(2, 1), 50u);

  const std::string j = ts.toJson().dump();
  EXPECT_NE(j.find("\"columns\":[\"a\",\"b\"]"), std::string::npos);
  EXPECT_NE(j.find("[300,3,30]"), std::string::npos);
  EXPECT_NE(j.find("\"dropped\":2"), std::string::npos);
}

TEST(TimeSeries, DefaultColumnsAreStable) {
  const std::vector<std::string>& cols = defaultSampleColumns();
  EXPECT_GE(cols.size(), 5u);
  // The report schema and dvmc_inspect lean on these names.
  EXPECT_NE(std::find(cols.begin(), cols.end(), "net.totalBytes"),
            cols.end());
  EXPECT_NE(std::find(cols.begin(), cols.end(), "cpu.retired"), cols.end());
}

// --- histogram percentiles in reports -------------------------------------

TEST(RunReport, HistogramSerializationIncludesPercentiles) {
  RunResult r;
  MetricSet s;
  Histogram h = s.histogram("lat");
  for (int i = 0; i < 99; ++i) h.add(4);
  h.add(1000);
  s.snapshotInto(r.metrics);
  const std::string j = toJson(r).dump();
  EXPECT_NE(j.find("\"p50\":4"), std::string::npos);
  EXPECT_NE(j.find("\"p90\":4"), std::string::npos);
  EXPECT_NE(j.find("\"p99\":4"), std::string::npos);
}

// --- end-to-end wiring through a System run -------------------------------

SystemConfig tracedConfig() {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 40;
  cfg.maxCycles = 5'000'000;
  cfg.ber.interval = 10'000;
  return cfg;
}

TEST(ObsEndToEnd, SystemRunPopulatesTraceAndMetrics) {
  EventTracer tracer(1u << 14);
  SystemConfig cfg = tracedConfig();
  cfg.tracer = &tracer;
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);

  // The typed registry's aggregate snapshot rode along in the result.
  EXPECT_GT(r.metrics.value("cpu.retired"), 0u);
  EXPECT_GT(r.metrics.value("l1.hit"), 0u);
  EXPECT_GT(r.metrics.value("cet.accessChecks"), 0u);
  EXPECT_GT(r.metrics.value("ber.checkpoints"), 0u);
  EXPECT_GT(r.metrics.value("net.totalBytes"), 0u);
  EXPECT_EQ(r.metrics.value("cet.accessChecks"),
            [&] {
              std::uint64_t t = 0;
              for (NodeId n = 0; n < sys.numNodes(); ++n) {
                t += sys.cet(n)->stats().get("cet.accessChecks");
              }
              return t;
            }());

  // The tracer saw epochs, informs, coherence misses, and checkpoints.
  bool epoch = false, inform = false, coherence = false, checkpoint = false;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    switch (tracer.at(i).kind) {
      case TraceKind::kEpoch: epoch = true; break;
      case TraceKind::kInform: inform = true; break;
      case TraceKind::kCoherence: coherence = true; break;
      case TraceKind::kCheckpoint: checkpoint = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(epoch);
  EXPECT_TRUE(inform);
  EXPECT_TRUE(coherence);
  EXPECT_TRUE(checkpoint);
}

TEST(ObsEndToEnd, PerNodeSnapshotScopesMetrics) {
  SystemConfig cfg = tracedConfig();
  System sys(cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed);
  MetricSnapshot per = sys.metricsSnapshot(/*perNode=*/true);
  std::uint64_t summed = 0;
  for (std::size_t n = 0; n < cfg.numNodes; ++n) {
    summed += per.value("node" + std::to_string(n) + "/cpu.retired");
  }
  EXPECT_EQ(summed, per.value("cpu.retired"));
  EXPECT_GT(summed, 0u);
}

TEST(ObsEndToEnd, TracingDoesNotPerturbSimulation) {
  SystemConfig cfg = tracedConfig();
  System plain(cfg);
  RunResult a = plain.run();

  EventTracer tracer(1u << 12);
  cfg.tracer = &tracer;
  System traced(cfg);
  RunResult b = traced.run();

  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_TRUE(a.metrics == b.metrics);
  EXPECT_GT(tracer.recorded(), 0u);
}

TEST(ErrorSink, ObserversSeeEveryDetection) {
  ErrorSink sink;
  std::vector<Cycle> seen;
  sink.addObserver([&](const Detection& d) { seen.push_back(d.cycle); });
  sink.report({CheckerKind::kCacheCoherence, 10, 0, 0x40, "a"});
  sink.report({CheckerKind::kEcc, 20, 1, 0x80, "b"});
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 10u);
  EXPECT_EQ(seen[1], 20u);
  sink.clear();  // observers survive a clear
  sink.report({CheckerKind::kOther, 30, 2, 0, "c"});
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace dvmc
