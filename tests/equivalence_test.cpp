// Cross-configuration equivalence properties.
//
// A data-race-free program must produce the *same final architectural
// memory* no matter which coherence protocol, consistency model, or
// coherence-checker implementation the machine runs — the whole point of
// the consistency-model contract (DRF programs observe sequential
// consistency everywhere).  These tests run one DRF program across every
// protocol × model × checker combination and demand bit-identical final
// memory, which would catch lost stores, broken mutual exclusion, stray
// writes, and any checker that perturbs architectural state.
//
// Also holds the stats-report printer to its contract across every
// factory configuration (it touches every accessor path in System).

#include <gtest/gtest.h>

#include <sstream>

#include "coherence/memory_storage.hpp"
#include "common/flat_map.hpp"
#include "system/runner.hpp"
#include "system/stats_report.hpp"
#include "system/system.hpp"
#include "workload/scripted.hpp"

namespace dvmc {
namespace {

constexpr int kNodes = 4;
constexpr int kCounters = 3;
constexpr int kRounds = 4;
constexpr int kPrivateWords = 16;
constexpr Addr kLockBase = 0x10000;
constexpr Addr kCounterBase = 0x600000;

Addr lockAddr(int c) { return kLockBase + static_cast<Addr>(c) * 0x40; }
Addr counterAddr(int c) { return kCounterBase + static_cast<Addr>(c) * 0x40; }
Addr privateAddr(NodeId n, int i) {
  return (Addr{1} << 30) + (static_cast<Addr>(n) << 26) +
         static_cast<Addr>(i) * 8;
}

/// DRF program: every node increments kCounters shared counters kRounds
/// times, each increment inside a CAS-lock critical section bracketed by
/// full membars (so it is properly synchronized even under RMO), then
/// fills a private array with node-specific values.
class DrfProgram final : public ThreadProgram {
 public:
  explicit DrfProgram(NodeId self) : self_(self) {}

  std::optional<Instr> next() override {
    if (waiting_) return std::nullopt;
    switch (state_) {
      case 0:  // acquire lock[c]
        waiting_ = true;
        state_ = 1;
        return Instr::cas(lockAddr(counter_), 0, self_ + 1, /*token=*/1);
      case 2:  // acquire membar
        state_ = 3;
        return Instr::membar(membar::kAll);
      case 3:  // read the counter
        waiting_ = true;
        state_ = 4;
        return Instr::load(counterAddr(counter_), /*token=*/2);
      case 5:  // write counter+1
        state_ = 6;
        return Instr::store(counterAddr(counter_), value_ + 1);
      case 6:  // release membar
        state_ = 7;
        return Instr::membar(membar::kAll);
      case 7: {  // release; advance counter/round
        const int held = counter_;
        if (++counter_ == kCounters) {
          counter_ = 0;
          ++round_;
        }
        state_ = round_ < kRounds ? 0 : 8;
        return Instr::store(lockAddr(held), 0);
      }
      case 8:  // private fill
        if (priv_ < kPrivateWords) {
          const int i = priv_++;
          return Instr::store(privateAddr(self_, i),
                              0xD00D0000u + (self_ << 8) + i);
        }
        state_ = 9;
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  void onResult(std::uint64_t token, std::uint64_t v) override {
    waiting_ = false;
    if (token == 1) {
      // CAS observed 0 (we won) or our own id (already applied): proceed.
      state_ = (v == 0 || v == self_ + 1) ? 2 : 0;
    } else {
      value_ = v;
      state_ = 5;
    }
  }

  bool finished() const override { return state_ == 9; }
  std::uint64_t transactionsCompleted() const override { return round_; }
  std::unique_ptr<ThreadProgram> clone() const override {
    return std::make_unique<DrfProgram>(*this);
  }

 private:
  NodeId self_;
  int state_ = 0;
  bool waiting_ = false;
  int counter_ = 0;
  int round_ = 0;
  int priv_ = 0;
  std::uint64_t value_ = 0;
};

SystemConfig drfConfig(Protocol p, ConsistencyModel m,
                       SystemConfig::CoherenceCheckerKind checker) {
  SystemConfig cfg = SystemConfig::withDvmc(p, m);
  cfg.coherenceChecker = checker;
  cfg.numNodes = kNodes;
  cfg.berEnabled = false;
  cfg.maxCycles = 30'000'000;
  cfg.programFactory = [](NodeId n) {
    return std::unique_ptr<ThreadProgram>(new DrfProgram(n));
  };
  return cfg;
}

FlatMap<Addr, DataBlock> finalMemory(const SystemConfig& cfg,
                                     const std::string& label) {
  System sys(cfg);
  RunResult r = sys.run();
  EXPECT_TRUE(r.completed) << label;
  EXPECT_EQ(r.detections, 0u) << label;
  return sys.memoryImage();
}

TEST(Equivalence, DrfFinalMemoryIdenticalAcrossProtocolAndModel) {
  FlatMap<Addr, DataBlock> reference;
  std::string referenceLabel;

  for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
    for (ConsistencyModel m :
         {ConsistencyModel::kSC, ConsistencyModel::kTSO,
          ConsistencyModel::kPSO, ConsistencyModel::kRMO}) {
      const std::string label =
          std::string(protocolName(p)) + "/" + modelName(m);
      SCOPED_TRACE(label);
      FlatMap<Addr, DataBlock> mem = finalMemory(
          drfConfig(p, m, SystemConfig::CoherenceCheckerKind::kEpoch), label);
      ASSERT_FALSE(mem.empty());

      // Spot-check the synchronized counters before comparing wholesale:
      // every config must see exactly nodes * rounds increments.
      for (int c = 0; c < kCounters; ++c) {
        const Addr blk = blockAddr(counterAddr(c));
        ASSERT_TRUE(mem.count(blk)) << "counter " << c << " never written";
        const std::uint64_t init = MemoryStorage::initialPattern(blk).read(
            blockOffset(counterAddr(c)), 8);
        EXPECT_EQ(mem.at(blk).read(blockOffset(counterAddr(c)), 8),
                  init + static_cast<std::uint64_t>(kNodes) * kRounds)
            << "counter " << c << " lost or duplicated an increment";
      }

      if (reference.empty()) {
        reference = std::move(mem);
        referenceLabel = label;
        continue;
      }
      ASSERT_EQ(mem.size(), reference.size())
          << "different set of written blocks vs " << referenceLabel;
      for (const auto& [blk, data] : reference) {
        auto it = mem.find(blk);
        ASSERT_NE(it, mem.end())
            << "block 0x" << std::hex << blk << std::dec
            << " written under " << referenceLabel << " but not here";
        EXPECT_TRUE(it->second == data)
            << "block 0x" << std::hex << blk << std::dec
            << " differs from " << referenceLabel;
      }
    }
  }
}

TEST(Equivalence, ShadowCheckerDoesNotPerturbArchitecturalState) {
  // Swapping the coherence-checker implementation (§8 modularity) must be
  // invisible to the architecture: same program, same final memory.
  for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
    const std::string base = std::string(protocolName(p)) + "/TSO";
    FlatMap<Addr, DataBlock> epoch = finalMemory(
        drfConfig(p, ConsistencyModel::kTSO,
                  SystemConfig::CoherenceCheckerKind::kEpoch),
        base + "/epoch");
    FlatMap<Addr, DataBlock> shadow = finalMemory(
        drfConfig(p, ConsistencyModel::kTSO,
                  SystemConfig::CoherenceCheckerKind::kShadow),
        base + "/shadow");
    ASSERT_EQ(epoch.size(), shadow.size()) << base;
    for (const auto& [blk, data] : epoch) {
      auto it = shadow.find(blk);
      ASSERT_NE(it, shadow.end()) << base << ": block 0x" << std::hex << blk;
      EXPECT_TRUE(it->second == data)
          << base << ": block 0x" << std::hex << blk << std::dec
          << " differs between checker implementations";
    }
  }
}

// ---------------------------------------------------------------------------
// Stats report
// ---------------------------------------------------------------------------

struct ReportCase {
  const char* name;
  SystemConfig cfg;
};

class StatsReportSweep : public ::testing::TestWithParam<int> {};

std::vector<ReportCase> reportCases() {
  std::vector<ReportCase> cases;
  for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
    cases.push_back({"unprotected",
                     SystemConfig::unprotected(p, ConsistencyModel::kTSO)});
    cases.push_back(
        {"dvmc", SystemConfig::withDvmc(p, ConsistencyModel::kTSO)});
    cases.push_back(
        {"snOnly", SystemConfig::snOnly(p, ConsistencyModel::kTSO)});
    SystemConfig shadow = SystemConfig::withDvmc(p, ConsistencyModel::kTSO);
    shadow.coherenceChecker = SystemConfig::CoherenceCheckerKind::kShadow;
    cases.push_back({"shadow", shadow});
  }
  return cases;
}

TEST_P(StatsReportSweep, PrintsEverySectionWithoutDetections) {
  ReportCase rc = reportCases()[static_cast<std::size_t>(GetParam())];
  rc.cfg.numNodes = 4;
  rc.cfg.targetTransactions = 40;
  rc.cfg.workload = WorkloadKind::kMicroMix;
  System sys(rc.cfg);
  RunResult r = sys.run();
  ASSERT_TRUE(r.completed) << rc.name;

  std::ostringstream os;
  StatsReportOptions opts;
  opts.perNode = true;
  opts.includeZero = (GetParam() % 2 == 0);
  printStatsReport(sys, os, opts);
  const std::string out = os.str();

  EXPECT_NE(out.find("[cores]"), std::string::npos) << rc.name;
  EXPECT_NE(out.find("[cache hierarchy]"), std::string::npos) << rc.name;
  EXPECT_NE(out.find("[coherence]"), std::string::npos) << rc.name;
  EXPECT_NE(out.find("net/totalBytes"), std::string::npos) << rc.name;
  EXPECT_NE(out.find("[detections] count=0"), std::string::npos) << rc.name;
  EXPECT_NE(out.find("node 3"), std::string::npos)
      << rc.name << ": perNode lines missing";
  const bool hasDvmc = rc.cfg.dvmc.cacheCoherence;
  EXPECT_EQ(out.find("cet/") != std::string::npos ||
                out.find("shadow/") != std::string::npos,
            hasDvmc)
      << rc.name << ": checker section does not match configuration";
  if (rc.cfg.berEnabled) {
    EXPECT_NE(out.find("[safetynet]"), std::string::npos) << rc.name;
    EXPECT_NE(out.find("ber/recoveryWindow"), std::string::npos) << rc.name;
  }
}

std::string reportCaseName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[8] = {"dirUnprotected", "dirDvmc",   "dirSnOnly",
                                  "dirShadow",      "snpUnprot", "snpDvmc",
                                  "snpSnOnly",      "snpShadow"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, StatsReportSweep, ::testing::Range(0, 8),
                         reportCaseName);

}  // namespace
}  // namespace dvmc
