// Unit tests for InlineTask: the fixed-inline-capacity move-only callable
// backing Simulator::Action. The properties the kernel depends on: captures
// live entirely inline (no heap), moves relocate the capture exactly once,
// and destructors run exactly once — whether the task was invoked, moved
// from, reset, or simply dropped.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/inline_task.hpp"
#include "sim/simulator.hpp"

namespace dvmc {
namespace {

using Task = InlineTask<64>;

// ---------------------------------------------------------------------------
// Basic invocation and emptiness
// ---------------------------------------------------------------------------

TEST(InlineTask, InvokesStoredCallable) {
  int calls = 0;
  Task t([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(t));
  t();
  t();
  EXPECT_EQ(calls, 2);
}

TEST(InlineTask, DefaultConstructedIsEmpty) {
  Task t;
  EXPECT_FALSE(static_cast<bool>(t));
}

TEST(InlineTask, ResetMakesTaskEmpty) {
  Task t([] {});
  t.reset();
  EXPECT_FALSE(static_cast<bool>(t));
}

// ---------------------------------------------------------------------------
// Capture-size limits
// ---------------------------------------------------------------------------

TEST(InlineTask, AcceptsCapturesUpToCapacity) {
  // Exactly at the 64-byte budget: eight 8-byte words.
  struct Big {
    std::uint64_t w[8];
  };
  static_assert(sizeof(Big) == Task::kCapacity);
  Big big{};
  big.w[0] = 7;
  big.w[7] = 42;
  static std::uint64_t sum;
  sum = 0;
  // `big` alone is exactly the budget; the result routes through a static
  // because one more captured pointer would (correctly) fail to compile.
  Task t([big] { sum = big.w[0] + big.w[7]; });
  t();
  EXPECT_EQ(sum, 49u);
}

// The over-budget case is a compile error by design; assert the trait the
// static_assert keys on rather than instantiating it.
TEST(InlineTask, CompileTimeBudgetIsTheCaptureSize) {
  struct Pad {
    std::uint64_t w[9];  // 72 bytes
  };
  auto oversized = [p = Pad{}] { (void)p; };
  static_assert(sizeof(oversized) > Task::kCapacity,
                "test premise: capture exceeds the budget");
  static_assert(sizeof(oversized) <= InlineTask<72>::kCapacity,
                "and fits the next size up");
}

// ---------------------------------------------------------------------------
// Move-only semantics
// ---------------------------------------------------------------------------

TEST(InlineTask, IsMoveOnly) {
  static_assert(!std::is_copy_constructible_v<Task>);
  static_assert(!std::is_copy_assignable_v<Task>);
  static_assert(std::is_nothrow_move_constructible_v<Task>);
  static_assert(std::is_nothrow_move_assignable_v<Task>);
}

TEST(InlineTask, MoveTransfersTheCallable) {
  int calls = 0;
  Task a([&calls] { ++calls; });
  Task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InlineTask, MoveAssignDestroysTheOldCallable) {
  int destroyed = 0;
  struct CountsDestruction {
    int* counter;
    explicit CountsDestruction(int* c) : counter(c) {}
    CountsDestruction(CountsDestruction&& o) noexcept
        : counter(std::exchange(o.counter, nullptr)) {}
    ~CountsDestruction() {
      if (counter != nullptr) ++(*counter);
    }
    void operator()() {}
  };
  Task a{CountsDestruction(&destroyed)};
  Task b([] {});
  a = std::move(b);  // the CountsDestruction payload must die exactly once
  EXPECT_EQ(destroyed, 1);
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(InlineTask, StoresMoveOnlyCaptures) {
  auto p = std::make_unique<int>(11);
  Task t([p = std::move(p)] { EXPECT_EQ(*p, 11); });
  Task t2(std::move(t));
  t2();
}

// ---------------------------------------------------------------------------
// Destructor runs exactly once
// ---------------------------------------------------------------------------

struct DtorProbe {
  std::shared_ptr<int> count;
  void operator()() const {}
};

TEST(InlineTask, DestructorRunsOnceOnScopeExit) {
  auto count = std::make_shared<int>(0);
  {
    Task t(DtorProbe{count});
    EXPECT_EQ(count.use_count(), 2);
  }
  EXPECT_EQ(count.use_count(), 1);  // capture destroyed with the task
}

TEST(InlineTask, DestructorRunsOnceAcrossMoves) {
  auto count = std::make_shared<int>(0);
  {
    Task a(DtorProbe{count});
    Task b(std::move(a));
    Task c;
    c = std::move(b);
    EXPECT_EQ(count.use_count(), 2);  // exactly one live capture
  }
  EXPECT_EQ(count.use_count(), 1);
}

TEST(InlineTask, ResetAfterMoveIsANoOp) {
  auto count = std::make_shared<int>(0);
  Task a(DtorProbe{count});
  Task b(std::move(a));
  a.reset();  // moved-from: nothing to destroy
  EXPECT_EQ(count.use_count(), 2);
  b.reset();
  EXPECT_EQ(count.use_count(), 1);
  b.reset();  // idempotent
  EXPECT_EQ(count.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Kernel contract
// ---------------------------------------------------------------------------

TEST(InlineTask, SimulatorActionBudgetIsStable) {
  // The kernel promises captures up to kActionCapacityBytes compile and
  // anything larger does not. Guard the constant so a well-meaning "just
  // bump it" shows up in review with the Event-size static_assert.
  static_assert(Simulator::kActionCapacityBytes == 96);
  static_assert(Simulator::Action::kCapacity ==
                Simulator::kActionCapacityBytes);
}

}  // namespace
}  // namespace dvmc
