// Workload generator tests: determinism, clone fidelity, lock protocol
// shape, 32-bit fractions (Table 8), and preset sanity.
#include <gtest/gtest.h>

#include <vector>

#include "workload/params.hpp"
#include "workload/synthetic.hpp"

namespace dvmc {
namespace {

/// Drives a workload standalone: failed lock acquires are simulated by
/// feeding back "held" a few times before "free".
std::vector<Instr> drive(SyntheticWorkload& w, std::size_t maxInstrs,
                         int holdRounds = 0) {
  std::vector<Instr> out;
  int holds = holdRounds;
  while (out.size() < maxInstrs && !w.finished()) {
    auto i = w.next();
    if (!i) break;
    out.push_back(*i);
    if (i->token != 0) {
      // Resolve the feedback immediately: locks are free (0) unless we are
      // still simulating contention; barrier reads return a large count so
      // spins terminate.
      std::uint64_t value = 0;
      if (holds > 0 && i->kind == Instr::Kind::kCas) {
        value = 999;  // held by someone else
        --holds;
      } else if (i->kind == Instr::Kind::kLoad && i->addr >= (1u << 19) &&
                 i->addr < (1u << 21)) {
        value = 1u << 20;  // barrier counter far past any target
      }
      w.onResult(i->token, value);
    }
  }
  return out;
}

TEST(Workload, DeterministicForSeed) {
  WorkloadParams p = workloadPreset(WorkloadKind::kOltp);
  p.maxTransactions = 5;
  SyntheticWorkload a(p, ConsistencyModel::kTSO, 0, 4, 7);
  SyntheticWorkload b(p, ConsistencyModel::kTSO, 0, 4, 7);
  auto ia = drive(a, 2000);
  auto ib = drive(b, 2000);
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia[i].kind, ib[i].kind) << i;
    EXPECT_EQ(ia[i].addr, ib[i].addr) << i;
    EXPECT_EQ(ia[i].value, ib[i].value) << i;
  }
}

TEST(Workload, DifferentNodesProduceDifferentStreams) {
  WorkloadParams p = workloadPreset(WorkloadKind::kOltp);
  p.maxTransactions = 5;
  SyntheticWorkload a(p, ConsistencyModel::kTSO, 0, 4, 7);
  SyntheticWorkload b(p, ConsistencyModel::kTSO, 1, 4, 7);
  auto ia = drive(a, 500);
  auto ib = drive(b, 500);
  bool differ = ia.size() != ib.size();
  for (std::size_t i = 0; !differ && i < ia.size(); ++i) {
    differ = ia[i].addr != ib[i].addr;
  }
  EXPECT_TRUE(differ);
}

TEST(Workload, CloneContinuesIdentically) {
  WorkloadParams p = workloadPreset(WorkloadKind::kApache);
  p.maxTransactions = 10;
  SyntheticWorkload a(p, ConsistencyModel::kTSO, 2, 4, 3);
  drive(a, 137);  // advance into the middle of a transaction
  auto clone = a.clone();
  auto* b = static_cast<SyntheticWorkload*>(clone.get());
  auto ia = drive(a, 300);
  auto ib = drive(*b, 300);
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia[i].addr, ib[i].addr) << i;
    EXPECT_EQ(ia[i].value, ib[i].value) << i;
  }
}

TEST(Workload, LockProtocolShape) {
  // Force every transaction through a critical section and verify the
  // swap ... release-store pairing on the same lock address.
  WorkloadParams p = workloadPreset(WorkloadKind::kMicroMix);
  p.lockFraction = 1.0;
  p.maxTransactions = 8;
  SyntheticWorkload w(p, ConsistencyModel::kTSO, 0, 4, 5);
  auto instrs = drive(w, 5000);
  int swaps = 0;
  int releases = 0;
  Addr lastLock = 0;
  for (const Instr& i : instrs) {
    if (i.kind == Instr::Kind::kCas) {
      ++swaps;
      lastLock = i.addr;
      EXPECT_GE(i.addr, AddressMap::kLockBase);
      EXPECT_LT(i.addr, AddressMap::kBarrierBase);
      EXPECT_EQ(i.compare, 0u);  // acquires only a free lock
      EXPECT_EQ(i.value, 1u);    // owner id 0 + 1
    }
    if (i.kind == Instr::Kind::kStore && i.addr == lastLock && i.value == 0) {
      ++releases;
    }
  }
  EXPECT_EQ(swaps, 8);
  EXPECT_EQ(releases, 8) << "every acquire must pair with a release";
}

TEST(Workload, SpinsWhileLockHeld) {
  WorkloadParams p = workloadPreset(WorkloadKind::kMicroMix);
  p.lockFraction = 1.0;
  p.maxTransactions = 1;
  SyntheticWorkload w(p, ConsistencyModel::kTSO, 0, 4, 5);
  auto instrs = drive(w, 5000, /*holdRounds=*/3);
  int spinLoads = 0;
  int swaps = 0;
  for (const Instr& i : instrs) {
    if (i.kind == Instr::Kind::kLoad && i.addr >= AddressMap::kLockBase &&
        i.addr < AddressMap::kBarrierBase) {
      ++spinLoads;
    }
    if (i.kind == Instr::Kind::kCas) ++swaps;
  }
  EXPECT_GE(spinLoads, 3);  // spun while held
  EXPECT_GE(swaps, 2);      // retried the swap after observing free
}

TEST(Workload, ReleaseMembarsMatchModel) {
  WorkloadParams p = workloadPreset(WorkloadKind::kMicroMix);
  p.lockFraction = 1.0;
  p.frac32Bit = 0.0;
  p.maxTransactions = 4;

  auto countMembars = [&](ConsistencyModel m) {
    SyntheticWorkload w(p, m, 0, 4, 5);
    auto instrs = drive(w, 5000);
    int membars = 0;
    for (const Instr& i : instrs) {
      if (i.kind == Instr::Kind::kMembar) ++membars;
    }
    return membars;
  };
  EXPECT_EQ(countMembars(ConsistencyModel::kSC), 0);
  EXPECT_EQ(countMembars(ConsistencyModel::kTSO), 0);
  EXPECT_GT(countMembars(ConsistencyModel::kPSO), 0);   // stbar releases
  EXPECT_GT(countMembars(ConsistencyModel::kRMO),
            countMembars(ConsistencyModel::kPSO));      // acquire + release
}

TEST(Workload, ThirtyTwoBitFractionApproximatesTable8) {
  for (WorkloadKind k : {WorkloadKind::kApache, WorkloadKind::kOltp,
                         WorkloadKind::kJbb, WorkloadKind::kSlash}) {
    WorkloadParams p = workloadPreset(k);
    p.maxTransactions = 400;
    SyntheticWorkload w(p, ConsistencyModel::kPSO, 0, 4, 11);
    drive(w, 200'000);
    EXPECT_NEAR(w.fraction32Bit(), p.frac32Bit, 0.05) << workloadName(k);
  }
}

TEST(Workload, AddressesStayInAssignedRegions) {
  WorkloadParams p = workloadPreset(WorkloadKind::kOltp);
  p.maxTransactions = 20;
  SyntheticWorkload w(p, ConsistencyModel::kTSO, 3, 4, 13);
  for (const Instr& i : drive(w, 10'000)) {
    if (!i.isMemOp()) continue;
    const bool isLock = i.addr >= AddressMap::kLockBase &&
                        i.addr < AddressMap::kSharedBase;
    const bool isShared = i.addr >= AddressMap::kSharedBase &&
                          i.addr < AddressMap::kPrivateBase;
    const bool isOwnPrivate =
        i.addr >= AddressMap::privateAddr(3, 0, 0) &&
        i.addr < AddressMap::privateAddr(4, 0, 0);
    EXPECT_TRUE(isLock || isShared || isOwnPrivate)
        << std::hex << i.addr;
    EXPECT_EQ(i.addr % 8, 0u) << "word aligned";
  }
}

TEST(Workload, FinishesExactlyAtTransactionTarget) {
  WorkloadParams p = workloadPreset(WorkloadKind::kMicroMix);
  p.lockFraction = 0.0;
  p.maxTransactions = 7;
  SyntheticWorkload w(p, ConsistencyModel::kTSO, 0, 4, 1);
  drive(w, 100'000);
  EXPECT_TRUE(w.finished());
  EXPECT_EQ(w.transactionsCompleted(), 7u);
}

TEST(Workload, PresetsLookupByName) {
  EXPECT_EQ(workloadFromName("apache"), WorkloadKind::kApache);
  EXPECT_EQ(workloadFromName("oltp"), WorkloadKind::kOltp);
  EXPECT_EQ(workloadFromName("jbb"), WorkloadKind::kJbb);
  EXPECT_EQ(workloadFromName("slash"), WorkloadKind::kSlash);
  EXPECT_EQ(workloadFromName("barnes"), WorkloadKind::kBarnes);
  for (WorkloadKind k : {WorkloadKind::kApache, WorkloadKind::kOltp,
                         WorkloadKind::kJbb, WorkloadKind::kSlash,
                         WorkloadKind::kBarnes}) {
    EXPECT_EQ(workloadFromName(workloadName(k)), k);
  }
}

TEST(Workload, SlashPresetIsHighContention) {
  const WorkloadParams slash = workloadPreset(WorkloadKind::kSlash);
  const WorkloadParams apache = workloadPreset(WorkloadKind::kApache);
  EXPECT_LT(slash.numLocks, apache.numLocks);
  EXPECT_GT(slash.lockFraction, apache.lockFraction);
}

TEST(Workload, BarnesPresetHasBarriers) {
  EXPECT_GT(workloadPreset(WorkloadKind::kBarnes).barrierEveryTx, 0u);
  EXPECT_EQ(workloadPreset(WorkloadKind::kOltp).barrierEveryTx, 0u);
}

}  // namespace
}  // namespace dvmc
