// SafetyNet backward-error-recovery tests: checkpoint cadence, rollback
// with full state restoration, post-recovery forward progress, and the
// recovery-window bound.
#include <gtest/gtest.h>

#include "system/system.hpp"
#include "workload/scripted.hpp"

namespace dvmc {
namespace {

SystemConfig berConfig(Protocol p = Protocol::kDirectory) {
  SystemConfig cfg = SystemConfig::withDvmc(p, ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kMicroMix;
  cfg.targetTransactions = 120;
  cfg.ber.interval = 5'000;
  cfg.ber.maxCheckpoints = 4;
  cfg.maxCycles = 30'000'000;
  return cfg;
}

TEST(SafetyNet, CheckpointsAccumulateAndTrim) {
  SystemConfig cfg = berConfig();
  System sys(cfg);
  sys.runUntil([&] { return sys.sim().now() >= 40'000; });
  ASSERT_NE(sys.ber(), nullptr);
  EXPECT_EQ(sys.ber()->checkpointCount(), cfg.ber.maxCheckpoints);
  EXPECT_GT(sys.ber()->newestCheckpoint(), sys.ber()->oldestCheckpoint());
  EXPECT_EQ(sys.ber()->recoveryWindow(),
            cfg.ber.interval * cfg.ber.maxCheckpoints);
}

TEST(SafetyNet, RecoveryRewindsAndCompletes) {
  SystemConfig cfg = berConfig();
  System sys(cfg);
  sys.runUntil([&] { return sys.sim().now() >= 25'000; });
  const std::uint64_t txnsBefore = sys.totalTransactions();
  ASSERT_TRUE(sys.recover(sys.sim().now()));
  EXPECT_EQ(sys.ber()->recoveries(), 1u);
  // The rolled-back system must make forward progress to the target with
  // no checker detections (a consistent restore).
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed) << "post-recovery deadlock";
  EXPECT_EQ(sys.sink().count(), 0u) << sys.sink().first().what;
  EXPECT_GE(sys.totalTransactions(), txnsBefore);
}

TEST(SafetyNet, RecoveryBeforeWindowFails) {
  SystemConfig cfg = berConfig();
  System sys(cfg);
  sys.runUntil([&] { return sys.sim().now() >= 100'000; });
  // An "error" that happened before the oldest retained checkpoint cannot
  // be recovered.
  EXPECT_FALSE(sys.recover(sys.ber()->oldestCheckpoint()));
  EXPECT_TRUE(sys.recover(sys.sim().now()));
}

TEST(SafetyNet, RepeatedRecoveriesStayConsistent) {
  SystemConfig cfg = berConfig();
  cfg.targetTransactions = 150;
  System sys(cfg);
  for (int i = 1; i <= 3; ++i) {
    sys.runUntil([&, i] { return sys.sim().now() >= i * 30'000u; });
    if (sys.allCoresDone()) break;
    ASSERT_TRUE(sys.recover(sys.sim().now())) << "recovery " << i;
    // Drain the restart gap so cores resume before the next deadline.
    sys.runUntil([&] { return false; });
    if (sys.allCoresDone() ||
        sys.totalTransactions() >= cfg.targetTransactions) {
      break;
    }
  }
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(sys.sink().count(), 0u) << sys.sink().first().what;
}

TEST(SafetyNet, SnoopingRecoveryWorksToo) {
  SystemConfig cfg = berConfig(Protocol::kSnooping);
  System sys(cfg);
  sys.runUntil([&] { return sys.sim().now() >= 25'000; });
  ASSERT_TRUE(sys.recover(sys.sim().now()));
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(sys.sink().count(), 0u) << sys.sink().first().what;
}

TEST(SafetyNet, SnapshotRestoreRoundTripPreservesMemory) {
  // Write values, checkpoint, corrupt, restore: the memory image must
  // match the checkpoint point exactly. captureSnapshot() seals the live
  // undo segment, so restoring the returned checkpoint (with no newer
  // segments) reproduces the image at the capture instant.
  SystemConfig cfg = berConfig();
  cfg.berEnabled = true;
  cfg.programFactory = [](NodeId n) -> std::unique_ptr<ThreadProgram> {
    std::vector<Instr> p;
    if (n == 0) {
      for (int i = 0; i < 10; ++i) {
        p.push_back(Instr::store(0x400000 + i * kBlockSizeBytes, 1000 + i));
      }
    }
    return std::make_unique<ScriptedProgram>(p);
  };
  System sys(cfg);
  RunResult r = sys.run();  // run to completion: all stores performed
  ASSERT_TRUE(r.completed);
  SafetyNet::Snapshot snap = sys.captureSnapshot();
  const FlatMap<Addr, DataBlock> imageAtCapture = sys.memoryImage();
  for (int i = 0; i < 10; ++i) {
    const Addr blk = 0x400000 + i * kBlockSizeBytes;
    ASSERT_TRUE(imageAtCapture.count(blk)) << i;
    EXPECT_EQ(imageAtCapture.at(blk).read(0, 8), 1000u + i);
  }
  // Corrupt the live memory, restore, verify.
  MemoryMap map{4};
  sys.home(map.homeOf(0x400000))->memory().injectBitFlip(0x400000, 3);
  sys.restoreSnapshot(snap);
  EXPECT_EQ(sys.memoryImage(), imageAtCapture);
  ErrorSink scratch;
  EXPECT_EQ(sys.home(map.homeOf(0x400000))
                ->memory()
                .read(0x400000, &scratch, 0, 0)
                .read(0, 8),
            1000u);
  EXPECT_FALSE(scratch.any());
}

TEST(SafetyNet, UndoLogRestoreMatchesFullImageAcrossCheckpoints) {
  // The differential proof that undo-log (delta) restore is bit-identical
  // to the old full-snapshot restore: independently reconstruct the full
  // memory image a deep-copy snapshot would have captured at each
  // checkpoint instant by replaying the audited store stream, then roll
  // back through the production SafetyNet path and compare images.
  SystemConfig cfg = berConfig();
  cfg.targetTransactions = 400;
  System sys(cfg);

  // Full-image reference: every performed store, in perform order, with
  // its cycle — exactly the input the old captureSnapshot() folded into
  // its deep copy.
  struct AuditedStore {
    Cycle cycle;
    Addr addr;
    std::size_t size;
    std::uint64_t value;
  };
  std::vector<AuditedStore> log;
  sys.setStoreAuditHook(
      [&](NodeId, Addr addr, std::size_t size, std::uint64_t value) {
        log.push_back({sys.sim().now(), addr, size, value});
      });

  sys.runUntil([&] { return sys.sim().now() >= 23'000; });
  ASSERT_GE(sys.ber()->checkpointCount(), 3u);
  ASSERT_FALSE(log.empty());
  ASSERT_TRUE(sys.recover(sys.sim().now()));
  const Cycle target = sys.ber()->newestCheckpoint();

  // Replay the store stream up to the restored checkpoint into a fresh
  // image (the old full-snapshot semantics). A store in the same cycle as
  // the checkpoint event may sit on either side of the capture within that
  // cycle, so accept any split of the equal-cycle stores.
  auto replayUpTo = [&](std::size_t count) {
    FlatMap<Addr, DataBlock> image;
    for (std::size_t i = 0; i < count; ++i) {
      const AuditedStore& s = log[i];
      const Addr blk = blockAddr(s.addr);
      auto [it, fresh] =
          image.try_emplace(blk, MemoryStorage::initialPattern(blk));
      it->second.write(blockOffset(s.addr), s.size, s.value);
    }
    return image;
  };
  std::size_t firstAtOrAfter = 0;
  while (firstAtOrAfter < log.size() && log[firstAtOrAfter].cycle < target) {
    ++firstAtOrAfter;
  }
  std::size_t lastEqual = firstAtOrAfter;
  while (lastEqual < log.size() && log[lastEqual].cycle == target) {
    ++lastEqual;
  }
  bool matched = false;
  for (std::size_t split = firstAtOrAfter; split <= lastEqual; ++split) {
    if (sys.memoryImage() == replayUpTo(split)) {
      matched = true;
      break;
    }
  }
  EXPECT_TRUE(matched)
      << "undo-log restore diverged from full-image reconstruction at "
      << target;

  // And the restored system still runs to completion with clean verdicts.
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(sys.sink().count(), 0u)
      << (sys.sink().any() ? sys.sink().first().what : "");
}

TEST(SafetyNet, UndoLogMultiIntervalRollbackIsExact) {
  // Roll back across several checkpoint intervals in one recovery (the
  // error is planted just after an old checkpoint), forcing the restorer
  // to replay multiple undo segments newest-first.
  SystemConfig cfg = berConfig();
  cfg.targetTransactions = 400;
  System sys(cfg);
  struct AuditedStore {
    Cycle cycle;
    Addr addr;
    std::size_t size;
    std::uint64_t value;
  };
  std::vector<AuditedStore> log;
  sys.setStoreAuditHook(
      [&](NodeId, Addr addr, std::size_t size, std::uint64_t value) {
        log.push_back({sys.sim().now(), addr, size, value});
      });
  sys.runUntil([&] { return sys.sim().now() >= 23'000; });
  ASSERT_GE(sys.ber()->checkpointCount(), 4u);
  // Target the oldest retained checkpoint: every newer segment replays.
  ASSERT_TRUE(sys.recover(sys.ber()->oldestCheckpoint() + 1));
  const Cycle target = sys.ber()->newestCheckpoint();
  EXPECT_EQ(target, sys.ber()->oldestCheckpoint());  // all newer trimmed

  FlatMap<Addr, DataBlock> expected;
  std::size_t replayed = 0;
  for (const AuditedStore& s : log) {
    if (s.cycle >= target) break;  // (no stores landed exactly at target)
    const Addr blk = blockAddr(s.addr);
    auto [it, fresh] =
        expected.try_emplace(blk, MemoryStorage::initialPattern(blk));
    it->second.write(blockOffset(s.addr), s.size, s.value);
    ++replayed;
  }
  const bool splitAmbiguous =
      replayed < log.size() && log[replayed].cycle == target;
  if (!splitAmbiguous) {
    EXPECT_EQ(sys.memoryImage(), expected);
  }
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(sys.sink().count(), 0u)
      << (sys.sink().any() ? sys.sink().first().what : "");
}

TEST(SafetyNet, CheckpointTrafficIsVisible) {
  SystemConfig cfg = berConfig();
  cfg.dvmc = DvmcConfig{};  // isolate BER traffic (all checkers off)
  System sysWith(cfg);
  sysWith.runUntil([&] { return sysWith.sim().now() >= 30'000; });
  const std::uint64_t with = sysWith.dataNet().totalBytes();

  cfg.berEnabled = false;
  cfg.seed = 1;
  System sysWithout(cfg);
  sysWithout.runUntil([&] { return sysWithout.sim().now() >= 30'000; });
  const std::uint64_t without = sysWithout.dataNet().totalBytes();
  EXPECT_GT(with, without);
}


TEST(SafetyNet, RecoveryMidBarrierWorkloadCompletes) {
  // Barnes-style barrier phases: recovery in the middle of a barrier is
  // the nastiest state (a lock may be held, the phase counter mid-update,
  // some threads spinning). The restored run must still reach completion
  // with no detections.
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kBarnes;
  cfg.targetTransactions = 4;  // phases per thread
  cfg.ber.interval = 4'000;
  cfg.ber.maxCheckpoints = 5;
  cfg.maxCycles = 60'000'000;
  System sys(cfg);
  // Let it run into the middle of the phase structure, then roll back.
  sys.runUntil([&] { return sys.totalTransactions() >= 6; });
  ASSERT_FALSE(sys.allCoresDone());
  ASSERT_TRUE(sys.recover(sys.sim().now()));
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed) << "barrier deadlock after recovery";
  EXPECT_EQ(sys.sink().count(), 0u)
      << (sys.sink().any() ? sys.sink().first().what : "");
  // All four threads ran all four phases.
  EXPECT_EQ(sys.totalTransactions(), 16u);
}

TEST(SafetyNet, RecoveryDuringCriticalSectionPreservesMutualExclusion) {
  // Roll back while locks are (likely) held mid-critical-section on a
  // contended workload; the owner-id CAS re-acquisition must not break
  // mutual exclusion (no checker noise, run completes).
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kSlash;  // lockFraction 0.9, 2 locks
  cfg.targetTransactions = 150;
  cfg.ber.interval = 3'000;
  cfg.maxCycles = 60'000'000;
  System sys(cfg);
  for (int i = 1; i <= 4; ++i) {
    sys.runUntil([&, until = 10'000u * i] {
      return sys.sim().now() >= until;
    });
    if (sys.allCoresDone()) break;
    ASSERT_TRUE(sys.recover(sys.sim().now())) << i;
  }
  RunResult r = sys.runUntil([] { return false; });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(sys.sink().count(), 0u)
      << (sys.sink().any() ? sys.sink().first().what : "");
}

}  // namespace
}  // namespace dvmc
