// RingQueue unit tests: FIFO semantics, wraparound reuse, growth past the
// reservation, middle erase and reverse iteration (the write-buffer
// patterns), and a differential check against std::deque.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <string>

#include "common/ring_queue.hpp"
#include "common/rng.hpp"

namespace dvmc {
namespace {

TEST(RingQueue, EmptyQueueBehaves) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.begin(), q.end());
}

TEST(RingQueue, FifoOrderAcrossWraparound) {
  RingQueue<int> q(4);
  const std::size_t cap = q.capacity();
  // Push/pop far more elements than the capacity: the window slides
  // around the ring many times without reallocating.
  int next = 0, expect = 0;
  for (int round = 0; round < 1000; ++round) {
    while (q.size() < 3) q.push_back(next++);
    EXPECT_EQ(q.front(), expect++);
    q.pop_front();
  }
  EXPECT_EQ(q.capacity(), cap);
}

TEST(RingQueue, ReservePreventsReallocation) {
  RingQueue<int> q;
  q.reserve(100);
  const std::size_t cap = q.capacity();
  ASSERT_GE(cap, 100u);
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.capacity(), cap);
}

TEST(RingQueue, GrowsPastReservationPreservingOrder) {
  RingQueue<int> q(2);
  // Stagger the head so growth has to unwrap a wrapped window.
  for (int i = 0; i < 5; ++i) q.push_back(i);
  for (int i = 0; i < 5; ++i) q.pop_front();
  for (int i = 0; i < 200; ++i) q.push_back(i);
  ASSERT_EQ(q.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(q[static_cast<std::size_t>(i)], i);
}

TEST(RingQueue, MiddleEraseShiftsTailForward) {
  RingQueue<int> q;
  for (int i = 0; i < 6; ++i) q.push_back(i);
  auto it = q.begin();
  ++it;
  ++it;  // points at 2
  it = q.erase(it);
  EXPECT_EQ(*it, 3);
  ASSERT_EQ(q.size(), 5u);
  const int want[] = {0, 1, 3, 4, 5};
  for (std::size_t i = 0; i < q.size(); ++i) EXPECT_EQ(q[i], want[i]);
}

TEST(RingQueue, ReverseIterationMatchesDeque) {
  RingQueue<int> q;
  std::deque<int> d;
  for (int i = 0; i < 10; ++i) {
    q.push_back(i * i);
    d.push_back(i * i);
  }
  auto qit = q.rbegin();
  for (auto dit = d.rbegin(); dit != d.rend(); ++dit, ++qit) {
    ASSERT_NE(qit, q.rend());
    EXPECT_EQ(*qit, *dit);
  }
  EXPECT_EQ(qit, q.rend());
}

TEST(RingQueue, AssignReplacesContents) {
  RingQueue<std::string> q;
  q.push_back("old");
  const std::deque<std::string> src = {"a", "b", "c"};
  q.assign(src.begin(), src.end());
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front(), "a");
  EXPECT_EQ(q.back(), "c");
}

TEST(RingQueue, PopReleasesHeldResources) {
  RingQueue<std::string> q(2);
  q.push_back(std::string(1000, 'x'));
  q.pop_front();
  // The popped slot must not keep the string alive; push into the same
  // slot and verify nothing of the old value leaks through.
  q.push_back("fresh");
  EXPECT_EQ(q.back(), "fresh");
}

TEST(RingQueue, FuzzDifferentialAgainstDeque) {
  RingQueue<std::uint64_t> q(8);
  std::deque<std::uint64_t> d;
  Rng rng(7);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t op = rng.next() % 100;
    if (op < 45) {
      const std::uint64_t v = rng.next();
      q.push_back(v);
      d.push_back(v);
    } else if (op < 80) {
      if (!d.empty()) {
        ASSERT_EQ(q.front(), d.front());
        q.pop_front();
        d.pop_front();
      }
    } else if (op < 90) {
      if (!d.empty()) {
        const std::size_t i = rng.next() % d.size();
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        d.erase(d.begin() + static_cast<std::ptrdiff_t>(i));
      }
    } else if (op < 95) {
      if (!d.empty()) {
        ASSERT_EQ(q.back(), d.back());
        q.pop_back();
        d.pop_back();
      }
    } else if (op == 99) {
      q.clear();
      d.clear();
    }
    ASSERT_EQ(q.size(), d.size());
    if (!d.empty()) {
      const std::size_t i = rng.next() % d.size();
      ASSERT_EQ(q[i], d[i]);
    }
  }
  EXPECT_TRUE(std::equal(q.begin(), q.end(), d.begin(), d.end()));
}

}  // namespace
}  // namespace dvmc
