// Unit tests for the cache array (LRU victims, ECC model) and the
// memory backing store.
#include <gtest/gtest.h>

#include "coherence/cache_array.hpp"
#include "coherence/memory_storage.hpp"
#include "common/error_sink.hpp"

namespace dvmc {
namespace {

constexpr auto kAlways = [](const CacheLine&) { return true; };

TEST(CacheArray, InstallAndFind) {
  CacheArray c({4, 2}, true);
  DataBlock d;
  d.write(0, 8, 99);
  CacheLine* v = c.victim(0x1000, kAlways);
  ASSERT_NE(v, nullptr);
  c.install(*v, 0x1000, MosiState::kS, d);
  CacheLine* f = c.find(0x1000);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->state, MosiState::kS);
  EXPECT_EQ(f->data.read(0, 8), 99u);
  EXPECT_EQ(c.find(0x2000), nullptr);
}

TEST(CacheArray, VictimPrefersInvalidWays) {
  CacheArray c({1, 2}, true);
  DataBlock d;
  CacheLine* v1 = c.victim(0x0, kAlways);
  c.install(*v1, 0x0, MosiState::kS, d);
  CacheLine* v2 = c.victim(0x40, kAlways);
  EXPECT_FALSE(v2->valid);  // second way still free
}

TEST(CacheArray, LruEviction) {
  CacheArray c({1, 2}, true);
  ErrorSink sink;
  DataBlock d;
  c.install(*c.victim(0x000, kAlways), 0x000, MosiState::kS, d);
  c.install(*c.victim(0x040, kAlways), 0x040, MosiState::kS, d);
  // Touch 0x000 so 0x040 becomes LRU.
  c.touch(*c.find(0x000), &sink, 0, 0);
  CacheLine* v = c.victim(0x080, kAlways);
  ASSERT_TRUE(v->valid);
  EXPECT_EQ(v->tag, 0x040u);
}

TEST(CacheArray, VictimRespectsPredicate) {
  CacheArray c({1, 2}, true);
  DataBlock d;
  c.install(*c.victim(0x000, kAlways), 0x000, MosiState::kM, d);
  c.install(*c.victim(0x040, kAlways), 0x040, MosiState::kM, d);
  auto onlyShared = [](const CacheLine& l) { return l.tag == 0x040; };
  CacheLine* v = c.victim(0x080, onlyShared);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->tag, 0x040u);
  auto none = [](const CacheLine&) { return false; };
  EXPECT_EQ(c.victim(0x080, none), nullptr);
}

TEST(CacheArray, SetIndexingSeparatesSets) {
  CacheArray c({4, 1}, true);
  DataBlock d;
  // Blocks mapping to different sets never evict each other.
  for (Addr a : {Addr{0x000}, Addr{0x040}, Addr{0x080}, Addr{0x0C0}}) {
    c.install(*c.victim(a, kAlways), a, MosiState::kS, d);
  }
  for (Addr a : {Addr{0x000}, Addr{0x040}, Addr{0x080}, Addr{0x0C0}}) {
    EXPECT_NE(c.find(a), nullptr) << a;
  }
}

TEST(CacheArrayEcc, SingleBitFlipCorrectedOnAccess) {
  CacheArray c({4, 2}, /*eccProtected=*/true);
  ErrorSink sink;
  DataBlock d;
  d.write(0, 8, 0xABCD);
  c.install(*c.victim(0x1000, kAlways), 0x1000, MosiState::kS, d);
  ASSERT_TRUE(c.injectBitFlip(12345, &sink, 0, 0).has_value());
  CacheLine* line = c.find(0x1000);
  // The stored data is corrupted until the ECC check runs at access time.
  c.touch(*line, &sink, 0, 0);
  EXPECT_EQ(line->data.read(0, 8), 0xABCDu);
  EXPECT_EQ(c.eccCorrections(), 1u);
  EXPECT_FALSE(sink.any());
}

TEST(CacheArrayEcc, MultiBitFlipDetectedUncorrectable) {
  CacheArray c({4, 2}, true);
  ErrorSink sink;
  DataBlock d;
  c.install(*c.victim(0x1000, kAlways), 0x1000, MosiState::kS, d);
  CacheLine* line = c.find(0x1000);
  line->data.flipBit(3);
  line->pendingFlips.push_back(3);
  line->data.flipBit(9);
  line->pendingFlips.push_back(9);
  c.touch(*line, &sink, 2, 77);
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kEcc);
  EXPECT_EQ(sink.first().node, 2u);
  EXPECT_EQ(c.eccCorrections(), 0u);
}

TEST(CacheArray, StateFlipPromotesToM) {
  CacheArray c({4, 2}, true);
  DataBlock d;
  c.install(*c.victim(0x1000, kAlways), 0x1000, MosiState::kS, d);
  auto res = c.injectStateFlip(5);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->first, 0x1000u);
  EXPECT_EQ(res->second, MosiState::kM);
  EXPECT_EQ(c.find(0x1000)->state, MosiState::kM);
}

TEST(CacheArray, InjectionOnEmptyCacheFails) {
  CacheArray c({4, 2}, true);
  ErrorSink sink;
  EXPECT_FALSE(c.injectBitFlip(1, &sink, 0, 0).has_value());
  EXPECT_FALSE(c.injectStateFlip(1).has_value());
}

// ---------------------------------------------------------------------------
// MemoryStorage
// ---------------------------------------------------------------------------

TEST(MemoryStorage, DeterministicInitialPattern) {
  MemoryStorage m(true);
  ErrorSink sink;
  const DataBlock& a = m.read(0x40000000, &sink, 0, 0);
  const DataBlock expected = MemoryStorage::initialPattern(0x40000000);
  EXPECT_EQ(a, expected);
  // Two storages agree.
  MemoryStorage m2(true);
  EXPECT_EQ(m2.read(0x40000000, &sink, 0, 0), expected);
}

TEST(MemoryStorage, SyncSegmentZeroInitialized) {
  MemoryStorage m(true);
  ErrorSink sink;
  const DataBlock& lock = m.read(0x10000, &sink, 0, 0);
  for (std::size_t w = 0; w < kBlockSizeWords; ++w) {
    EXPECT_EQ(lock.read(w * 8, 8), 0u);
  }
  // Data segment is NOT zero (stale-data bugs must be visible).
  const DataBlock& data = m.read(0x40000000, &sink, 0, 0);
  bool anyNonZero = false;
  for (std::size_t w = 0; w < kBlockSizeWords; ++w) {
    if (data.read(w * 8, 8) != 0) anyNonZero = true;
  }
  EXPECT_TRUE(anyNonZero);
}

TEST(MemoryStorage, WriteReadBack) {
  MemoryStorage m(true);
  ErrorSink sink;
  DataBlock d;
  d.write(16, 8, 1234);
  m.write(0x5000, d);
  EXPECT_EQ(m.read(0x5000, &sink, 0, 0).read(16, 8), 1234u);
}

TEST(MemoryStorageEcc, SingleBitCorrected) {
  MemoryStorage m(true);
  ErrorSink sink;
  DataBlock d;
  d.write(0, 8, 0xFEED);
  m.write(0x5000, d);
  ASSERT_TRUE(m.injectBitFlip(0x5000, 5));
  EXPECT_EQ(m.read(0x5000, &sink, 0, 0).read(0, 8), 0xFEEDu);
  EXPECT_EQ(m.eccCorrections(), 1u);
  EXPECT_FALSE(sink.any());
}

TEST(MemoryStorageEcc, DoubleBitDetected) {
  MemoryStorage m(true);
  ErrorSink sink;
  DataBlock d;
  m.write(0x5000, d);
  ASSERT_TRUE(m.injectBitFlip(0x5000, 5));
  ASSERT_TRUE(m.injectBitFlip(0x5000, 6));
  m.read(0x5000, &sink, 1, 10);
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kEcc);
}

TEST(MemoryStorage, RestoreReplacesContents) {
  MemoryStorage m(true);
  ErrorSink sink;
  DataBlock d;
  d.write(0, 8, 1);
  m.write(0x40, d);
  FlatMap<Addr, DataBlock> snapshot = m.blocks();
  d.write(0, 8, 2);
  m.write(0x40, d);
  EXPECT_EQ(m.read(0x40, &sink, 0, 0).read(0, 8), 2u);
  m.restore(snapshot);
  EXPECT_EQ(m.read(0x40, &sink, 0, 0).read(0, 8), 1u);
}

}  // namespace
}  // namespace dvmc
