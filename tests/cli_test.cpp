// CliParser: the one flag-parsing implementation shared by every bench,
// tool, and example binary. These tests pin the parse contract the fleet
// relies on — =/space value forms, short aliases, strip-and-compact argv,
// eager validation with exit(2) semantics (exercised via exitOnError
// test mode), lenient/passthrough escapes, and the generated help and
// markdown tables that docs/observability.md embeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/version.hpp"
#include "obs/run_report.hpp"
#include "system/runner.hpp"

namespace dvmc {
namespace {

/// Mutable argv for parse(): returns pointers into `store`, argv[0] is the
/// binary name.
std::vector<char*> makeArgv(std::vector<std::string>& store) {
  std::vector<char*> argv;
  argv.reserve(store.size() + 1);
  for (std::string& s : store) argv.push_back(s.data());
  argv.push_back(nullptr);
  return argv;
}

TEST(CliParser, ParsesBothValueFormsAndStripsFlags) {
  CliParser cli("t", "test");
  std::string name;
  std::uint64_t n = 0;
  cli.option("--name", &name, "S", "a string");
  cli.count("--count", &n, "N", "a count");
  std::vector<std::string> args = {"t",       "keep1", "--name=alpha",
                                   "--count", "7",     "keep2"};
  std::vector<char*> argv = makeArgv(args);
  const int argc = cli.parse(static_cast<int>(args.size()), argv.data());
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "keep1");
  EXPECT_STREQ(argv[2], "keep2");
  EXPECT_EQ(argv[3], nullptr);
  EXPECT_EQ(name, "alpha");
  EXPECT_EQ(n, 7u);
}

TEST(CliParser, ShortAliasBindsToThePrecedingOption) {
  CliParser cli("t", "test");
  std::uint64_t jobs = 0;
  cli.count("--jobs", &jobs, "N", "workers").alias("-j");
  std::vector<std::string> args = {"t", "-j", "5"};
  std::vector<char*> argv = makeArgv(args);
  EXPECT_EQ(cli.parse(static_cast<int>(args.size()), argv.data()), 1);
  EXPECT_EQ(jobs, 5u);
}

TEST(CliParser, UnknownFlagIsAnErrorUnderStrictMode) {
  CliParser cli("t", "test");
  cli.exitOnError(false);
  std::vector<std::string> args = {"t", "--nope"};
  std::vector<char*> argv = makeArgv(args);
  EXPECT_EQ(cli.parse(static_cast<int>(args.size()), argv.data()), -1);
  EXPECT_NE(cli.error().find("--nope"), std::string::npos);
}

TEST(CliParser, LenientModePassesUnknownFlagsThrough) {
  CliParser cli("t", "test");
  cli.lenient();
  std::uint64_t n = 0;
  cli.count("--known", &n, "N", "known");
  std::vector<std::string> args = {"t", "--mystery=1", "--known", "3", "pos"};
  std::vector<char*> argv = makeArgv(args);
  const int argc = cli.parse(static_cast<int>(args.size()), argv.data());
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--mystery=1");
  EXPECT_STREQ(argv[2], "pos");
  EXPECT_EQ(n, 3u);
}

TEST(CliParser, PassthroughPrefixKeepsMatchingFlagsInArgv) {
  CliParser cli("t", "test");
  cli.exitOnError(false);
  cli.passthroughPrefix("--benchmark_");
  std::vector<std::string> args = {"t", "--benchmark_filter=Oracle"};
  std::vector<char*> argv = makeArgv(args);
  const int argc = cli.parse(static_cast<int>(args.size()), argv.data());
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--benchmark_filter=Oracle");
}

TEST(CliParser, CountRejectsZeroNegativeAndNonNumeric) {
  for (const char* bad : {"0", "-3", "12x", "", "99999999999999999999"}) {
    CliParser cli("t", "test");
    cli.exitOnError(false);
    std::uint64_t n = 1;
    cli.count("--n", &n, "N", "count");
    std::vector<std::string> args = {"t", std::string("--n=") + bad};
    std::vector<char*> argv = makeArgv(args);
    EXPECT_EQ(cli.parse(static_cast<int>(args.size()), argv.data()), -1)
        << "value '" << bad << "' should be rejected";
    EXPECT_EQ(n, 1u);
  }
}

TEST(CliParser, Uint64OptionAcceptsHex) {
  CliParser cli("t", "test");
  std::uint64_t seed = 0;
  cli.option("--seed", &seed, "S", "seed");
  std::vector<std::string> args = {"t", "--seed=0xCA3B41"};
  std::vector<char*> argv = makeArgv(args);
  EXPECT_EQ(cli.parse(static_cast<int>(args.size()), argv.data()), 1);
  EXPECT_EQ(seed, 0xCA3B41u);
}

TEST(CliParser, IntOptionAcceptsNegativeValues) {
  CliParser cli("t", "test");
  int v = 0;
  cli.option("--delta", &v, "D", "delta");
  std::vector<std::string> args = {"t", "--delta", "-12"};
  std::vector<char*> argv = makeArgv(args);
  EXPECT_EQ(cli.parse(static_cast<int>(args.size()), argv.data()), 1);
  EXPECT_EQ(v, -12);
}

TEST(CliParser, PathProbeRejectsUnwritableTargets) {
  CliParser cli("t", "test");
  cli.exitOnError(false);
  std::string p;
  cli.path("--out", &p, "FILE", "output");
  std::vector<std::string> args = {
      "t", "--out=/nonexistent-dvmc-dir/x/y.json"};
  std::vector<char*> argv = makeArgv(args);
  EXPECT_EQ(cli.parse(static_cast<int>(args.size()), argv.data()), -1);
  EXPECT_TRUE(p.empty());
}

TEST(CliParser, MissingValueIsAnError) {
  CliParser cli("t", "test");
  cli.exitOnError(false);
  std::uint64_t n = 0;
  cli.count("--n", &n, "N", "count");
  std::vector<std::string> args = {"t", "--n"};
  std::vector<char*> argv = makeArgv(args);
  EXPECT_EQ(cli.parse(static_cast<int>(args.size()), argv.data()), -1);
  EXPECT_NE(cli.error().find("requires a value"), std::string::npos);
}

TEST(CliParser, NoPositionalsRejectsOperands) {
  CliParser cli("t", "test");
  cli.exitOnError(false);
  cli.noPositionals();
  std::vector<std::string> args = {"t", "stray"};
  std::vector<char*> argv = makeArgv(args);
  EXPECT_EQ(cli.parse(static_cast<int>(args.size()), argv.data()), -1);
  EXPECT_NE(cli.error().find("stray"), std::string::npos);
}

TEST(CliParser, FlagSetsBoolWithoutConsumingAValue) {
  CliParser cli("t", "test");
  bool on = false;
  cli.flag("--on", &on, "a switch");
  std::vector<std::string> args = {"t", "--on", "next"};
  std::vector<char*> argv = makeArgv(args);
  const int argc = cli.parse(static_cast<int>(args.size()), argv.data());
  ASSERT_EQ(argc, 2);
  EXPECT_TRUE(on);
  EXPECT_STREQ(argv[1], "next");
}

TEST(CliParser, HelpRequestedReportsInsteadOfExitingUnderTestMode) {
  CliParser cli("t", "test");
  cli.exitOnError(false);
  std::vector<std::string> args = {"t", "--help"};
  std::vector<char*> argv = makeArgv(args);
  cli.parse(static_cast<int>(args.size()), argv.data());
  EXPECT_TRUE(cli.helpRequested());
}

TEST(CliParser, HelpTextListsEveryOptionWithDefaults) {
  CliParser cli("demo", "a demo binary");
  cli.usageLine("usage: demo [options]");
  std::uint64_t n = 42;
  cli.count("--n", &n, "N", "the knob");
  const std::string help = cli.helpText();
  EXPECT_NE(help.find("demo — a demo binary"), std::string::npos);
  EXPECT_NE(help.find("usage: demo [options]"), std::string::npos);
  EXPECT_NE(help.find("--n N"), std::string::npos);
  EXPECT_NE(help.find("the knob (default: 42)"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(CliParser, MarkdownTableMatchesTheRegisteredOptions) {
  CliParser cli("demo", "a demo binary");
  std::uint64_t jobs = 1;
  cli.count("--jobs", &jobs, "N", "workers").alias("-j");
  const std::string md = cli.markdownTable();
  EXPECT_NE(md.find("| Flag | Value | Description |"), std::string::npos);
  EXPECT_NE(md.find("`--jobs`, `-j`"), std::string::npos);
  EXPECT_NE(md.find("workers (default: 1)"), std::string::npos);
}

// The layered flag groups: one parser carries the runner and obs groups,
// which is exactly what parseStandardFlags builds for every binary.
TEST(CliParser, LayeredFlagGroupsComposeOnOneParser) {
  obs::resetObs();
  const int savedJobs = defaultJobs();
  CliParser cli("t", "test");
  addRunnerFlags(cli);
  obs::addObsFlags(cli);
  std::vector<std::string> args = {"t", "--jobs=3", "--sample-every=128",
                                   "--capture-trace-spill"};
  std::vector<char*> argv = makeArgv(args);
  EXPECT_EQ(cli.parse(static_cast<int>(args.size()), argv.data()), 1);
  EXPECT_EQ(defaultJobs(), 3);
  EXPECT_EQ(obs::options().sampleEvery, 128u);
  EXPECT_TRUE(obs::options().captureTraceSpill);
  setDefaultJobs(savedJobs);
  obs::resetObs();
  obs::options() = obs::ObsOptions{};
}

TEST(CliParser, ObsGroupMarkdownCoversTheDocumentedFlags) {
  CliParser cli("t", "test");
  obs::addObsFlags(cli);
  const std::string md = cli.markdownTable();
  for (const char* flag :
       {"`--trace`", "`--report-json`", "`--forensics`", "`--capture-trace`",
        "`--capture-trace-limit`", "`--capture-trace-spill`",
        "`--sample-every`", "`--sample-capacity`", "`--log-level`",
        "`--log-json`", "`--profile-out`", "`--status-file`"}) {
    EXPECT_NE(md.find(flag), std::string::npos) << "missing " << flag;
  }
  obs::resetObs();
}

// --version is a built-in like --help: recognized by every parser without
// registration, reported via versionRequested() in test mode.
TEST(CliParser, VersionFlagIsBuiltIn) {
  CliParser cli("t", "test");
  cli.exitOnError(false);
  std::vector<std::string> args = {"t", "--version"};
  std::vector<char*> argv = makeArgv(args);
  cli.parse(static_cast<int>(args.size()), argv.data());
  EXPECT_TRUE(cli.versionRequested());
  EXPECT_FALSE(cli.helpRequested());
}

// The build identity every artifact records: "dvmc <describe> (<type>...)".
TEST(Version, VersionStringNamesTheBuild) {
  const std::string v = versionString();
  EXPECT_EQ(v.rfind("dvmc ", 0), 0u) << v;
  EXPECT_NE(v.find('('), std::string::npos) << v;
  EXPECT_STREQ(versionString(), versionString());  // stable pointer
}

}  // namespace
}  // namespace dvmc
