// Unit tests for MessagePool / PooledMessage: node reuse (the zero-
// allocation steady state), slab growth under exhaustion, and the
// double-release / empty-handle safety properties the network event
// lambdas rely on.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/message_pool.hpp"

namespace dvmc {
namespace {

Message makeMsg(Addr addr) {
  Message m;
  m.type = MsgType::kData;
  m.src = 0;
  m.dest = 1;
  m.addr = addr;
  m.hasData = true;
  m.data.write(0, 8, addr * 3 + 1);
  return m;
}

// ---------------------------------------------------------------------------
// Reuse
// ---------------------------------------------------------------------------

TEST(MessagePool, RoundTripsTheMessage) {
  MessagePool pool;
  PooledMessage pm = pool.acquire(makeMsg(0x40));
  ASSERT_TRUE(static_cast<bool>(pm));
  EXPECT_EQ(pm->addr, 0x40u);
  EXPECT_EQ((*pm).data.read(0, 8), 0x40u * 3 + 1);
  EXPECT_EQ(pool.liveCount(), 1u);
}

TEST(MessagePool, ReleaseRecyclesTheNode) {
  MessagePool pool;
  Message* first;
  {
    PooledMessage pm = pool.acquire(makeMsg(0x40));
    first = &*pm;
  }  // handle scope exit releases
  EXPECT_EQ(pool.liveCount(), 0u);
  PooledMessage again = pool.acquire(makeMsg(0x80));
  // LIFO free list: the very node just released comes back — steady-state
  // traffic cycles through a fixed working set with no new slabs.
  EXPECT_EQ(&*again, first);
  EXPECT_EQ(again->addr, 0x80u);
  EXPECT_EQ(pool.capacity(), 64u);  // still a single slab
}

TEST(MessagePool, SteadyStateChurnNeverGrows) {
  MessagePool pool;
  for (int i = 0; i < 10'000; ++i) {
    PooledMessage a = pool.acquire(makeMsg(0x40));
    PooledMessage b = pool.acquire(makeMsg(0x80));
    EXPECT_EQ(pool.liveCount(), 2u);
  }
  EXPECT_EQ(pool.capacity(), 64u);
}

// ---------------------------------------------------------------------------
// Exhaustion growth
// ---------------------------------------------------------------------------

TEST(MessagePool, GrowsBySlabWhenExhausted) {
  MessagePool pool;
  std::vector<PooledMessage> live;
  for (std::size_t i = 0; i < 65; ++i) {
    live.push_back(pool.acquire(makeMsg(0x40 * (i + 1))));
  }
  EXPECT_EQ(pool.liveCount(), 65u);
  EXPECT_EQ(pool.capacity(), 128u);  // second slab
  // Every handle still dereferences its own message (no aliasing across
  // the growth boundary).
  for (std::size_t i = 0; i < 65; ++i) {
    EXPECT_EQ(live[i]->addr, 0x40 * (i + 1));
  }
  live.clear();
  EXPECT_EQ(pool.liveCount(), 0u);
}

// ---------------------------------------------------------------------------
// No double-release
// ---------------------------------------------------------------------------

TEST(MessagePool, ExplicitReleaseIsIdempotent) {
  MessagePool pool;
  PooledMessage pm = pool.acquire(makeMsg(0x40));
  pm.release();
  EXPECT_EQ(pool.liveCount(), 0u);
  EXPECT_FALSE(static_cast<bool>(pm));
  pm.release();  // second release: no-op, not a free-list corruption
  EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(MessagePool, MovedFromHandleDoesNotRelease) {
  MessagePool pool;
  PooledMessage a = pool.acquire(makeMsg(0x40));
  PooledMessage b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  a.release();  // empty: no-op
  EXPECT_EQ(pool.liveCount(), 1u);
  b.release();
  EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(MessagePool, MoveAssignReleasesTheOverwrittenMessage) {
  MessagePool pool;
  PooledMessage a = pool.acquire(makeMsg(0x40));
  PooledMessage b = pool.acquire(makeMsg(0x80));
  b = std::move(a);  // b's original node must go back to the pool
  EXPECT_EQ(pool.liveCount(), 1u);
  EXPECT_EQ(b->addr, 0x40u);
}

TEST(MessagePool, DefaultHandleIsEmpty) {
  PooledMessage pm;
  EXPECT_FALSE(static_cast<bool>(pm));
  pm.release();  // no pool attached: no-op
}

}  // namespace
}  // namespace dvmc
