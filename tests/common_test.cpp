// Unit tests for the common foundation: data blocks, CRC-16 hashing,
// wrapping 16-bit logical time, the deterministic RNG, and statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/crc16.hpp"
#include "common/data_block.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/wrap16.hpp"

namespace dvmc {
namespace {

// ---------------------------------------------------------------------------
// Address helpers
// ---------------------------------------------------------------------------

TEST(Types, BlockAlignment) {
  EXPECT_EQ(blockAddr(0x1000), 0x1000u);
  EXPECT_EQ(blockAddr(0x103F), 0x1000u);
  EXPECT_EQ(blockAddr(0x1040), 0x1040u);
  EXPECT_EQ(blockOffset(0x103F), 0x3Fu);
  EXPECT_EQ(blockOffset(0x1040), 0u);
}

// ---------------------------------------------------------------------------
// DataBlock
// ---------------------------------------------------------------------------

TEST(DataBlock, ReadWriteRoundTrip) {
  DataBlock d;
  d.write(0, 8, 0x1122334455667788ULL);
  EXPECT_EQ(d.read(0, 8), 0x1122334455667788ULL);
  d.write(56, 8, 42);
  EXPECT_EQ(d.read(56, 8), 42u);
  EXPECT_EQ(d.read(0, 8), 0x1122334455667788ULL);
}

TEST(DataBlock, SubWordAccess) {
  DataBlock d;
  d.write(0, 8, 0x1122334455667788ULL);
  EXPECT_EQ(d.read(0, 1), 0x88u);  // little endian
  EXPECT_EQ(d.read(0, 2), 0x7788u);
  EXPECT_EQ(d.read(0, 4), 0x55667788u);
  d.write(4, 4, 0xAABBCCDDu);
  EXPECT_EQ(d.read(0, 8), 0xAABBCCDD55667788ULL);
}

TEST(DataBlock, DefaultZero) {
  DataBlock d;
  for (std::size_t w = 0; w < kBlockSizeWords; ++w) {
    EXPECT_EQ(d.read(w * 8, 8), 0u);
  }
}

TEST(DataBlock, EqualityAndBitFlip) {
  DataBlock a, b;
  a.write(8, 8, 7);
  b.write(8, 8, 7);
  EXPECT_EQ(a, b);
  b.flipBit(64);  // first bit of word 1
  EXPECT_NE(a, b);
  EXPECT_EQ(b.read(8, 8), 6u);
  b.flipBit(64);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// CRC-16
// ---------------------------------------------------------------------------

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(data, 9), 0x29B1);
}

TEST(Crc16, DetectsSingleBitFlipsInBlocks) {
  DataBlock d;
  for (std::size_t w = 0; w < kBlockSizeWords; ++w) d.write(w * 8, 8, w * 3);
  const std::uint16_t clean = hashBlock(d);
  // Every single-bit corruption must change the hash (CRC-16 guarantees
  // detection of bursts shorter than 16 bits).
  for (std::size_t bit = 0; bit < kBlockSizeBytes * 8; bit += 7) {
    DataBlock c = d;
    c.flipBit(bit);
    EXPECT_NE(hashBlock(c), clean) << "bit " << bit;
  }
}

TEST(Crc16, DetectsShortBursts) {
  DataBlock d;
  d.write(0, 8, 0xDEADBEEFCAFEF00DULL);
  const std::uint16_t clean = hashBlock(d);
  // Flip bursts of up to 15 adjacent bits: all must be detected.
  for (std::size_t len = 2; len <= 15; ++len) {
    DataBlock c = d;
    for (std::size_t b = 100; b < 100 + len; ++b) c.flipBit(b);
    EXPECT_NE(hashBlock(c), clean) << "burst length " << len;
  }
}

TEST(Crc16, SlicedMatchesScalarReference) {
  // The slice-by-8 fast path must be output-identical to the one-byte
  // scalar reference for every length (covering the 8-byte folding loop,
  // the sub-slice tail, and their interaction) and for data that exercises
  // all byte values.
  Rng rng(0xC0FFEE);
  std::vector<std::uint8_t> buf(257);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    EXPECT_EQ(crc16(buf.data(), len), crc16Scalar(buf.data(), len))
        << "length " << len;
  }
  // All-identical bytes, each possible value, at a block-sized length.
  std::vector<std::uint8_t> block(kBlockSizeBytes);
  for (unsigned v = 0; v < 256; ++v) {
    std::fill(block.begin(), block.end(), static_cast<std::uint8_t>(v));
    EXPECT_EQ(crc16(block.data(), block.size()),
              crc16Scalar(block.data(), block.size()))
        << "fill byte " << v;
  }
}

TEST(Crc16, ScalarKnownVector) {
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16Scalar(data, 9), 0x29B1);
}

TEST(Crc16, HashDistribution) {
  // Distinct blocks should essentially never collide in a small sample.
  std::set<std::uint16_t> hashes;
  for (std::uint64_t i = 0; i < 300; ++i) {
    DataBlock d;
    d.write(0, 8, i * 0x9E3779B97F4A7C15ULL + 1);
    hashes.insert(hashBlock(d));
  }
  EXPECT_GE(hashes.size(), 295u);
}

// ---------------------------------------------------------------------------
// Wrapping 16-bit logical time
// ---------------------------------------------------------------------------

TEST(Wrap16, BasicOrder) {
  EXPECT_TRUE(ltimeBefore(1, 2));
  EXPECT_FALSE(ltimeBefore(2, 1));
  EXPECT_FALSE(ltimeBefore(5, 5));
  EXPECT_TRUE(ltimeBeforeEq(5, 5));
}

TEST(Wrap16, WrapAroundOrder) {
  // 0xFFF0 is before 0x0010 on the wheel (distance 0x20 forward).
  EXPECT_TRUE(ltimeBefore(0xFFF0, 0x0010));
  EXPECT_FALSE(ltimeBefore(0x0010, 0xFFF0));
  EXPECT_EQ(ltimeDistance(0xFFF0, 0x0010), 0x20);
}

TEST(Wrap16, HalfWheelBoundary) {
  // Exactly half the wheel apart: the distance is 0x8000, treated as "not
  // before" in both directions by the signed comparison convention.
  EXPECT_FALSE(ltimeBefore(0, 0x8000));
  EXPECT_FALSE(ltimeBefore(0x8000, 0));
  EXPECT_TRUE(ltimeBefore(0, 0x7FFF));
}

// Property sweep: for any base b and forward step s in (0, 2^15), b is
// before b+s.
class Wrap16Property : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Wrap16Property, ForwardStepsCompareCorrectly) {
  const std::uint32_t base = GetParam();
  for (std::uint32_t step : {1u, 2u, 100u, 0x3FFFu, 0x7FFEu}) {
    const LTime16 a = static_cast<LTime16>(base);
    const LTime16 b = static_cast<LTime16>(base + step);
    EXPECT_TRUE(ltimeBefore(a, b)) << base << "+" << step;
    EXPECT_FALSE(ltimeBefore(b, a)) << base << "+" << step;
    EXPECT_EQ(ltimeDistance(a, b), step);
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, Wrap16Property,
                         ::testing::Values(0u, 1u, 0x7FFFu, 0x8000u, 0xFFF0u,
                                           0xFFFFu, 0x1234u, 0xABCDu));

TEST(Wrap16, Truncate) {
  EXPECT_EQ(ltimeTruncate(0x12345), 0x2345);
  EXPECT_EQ(ltimeTruncate(0xFFFF), 0xFFFF);
  EXPECT_EQ(ltimeTruncate(0x10000), 0);
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, BoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const auto v = r.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

TEST(RunningStat, MeanAndStddev) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.addTracked(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.addTracked(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(LatencyHistogram, BucketsAndMean) {
  LatencyHistogram h;
  h.add(1);
  h.add(2);
  h.add(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.maxValue(), 1000u);
  EXPECT_NEAR(h.mean(), (1 + 2 + 1000) / 3.0, 0.01);
  EXPECT_FALSE(h.toString().empty());
}

TEST(LatencyHistogram, PercentilesOnKnownDistribution) {
  // 100 samples of 1 (bucket <=1), 100 of 3 (bucket <=4): p50 falls exactly
  // on the last sample of the first bucket, everything above is in <=4.
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.add(1);
  for (int i = 0; i < 100; ++i) h.add(3);
  EXPECT_EQ(h.percentile(0.50), 1u);
  EXPECT_EQ(h.percentile(0.51), 4u);
  EXPECT_EQ(h.p90(), 4u);
  EXPECT_EQ(h.p99(), 4u);
  EXPECT_EQ(h.percentile(1.0), 4u);
  EXPECT_EQ(h.percentile(0.0), 1u);  // clamped: first sample's bucket
}

TEST(LatencyHistogram, PercentilesSpanBuckets) {
  // 90 fast samples (<=16), 9 medium (<=128), 1 slow (<=1024): the classic
  // long-tail shape that p50/p90/p99 are meant to separate.
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.add(16);
  for (int i = 0; i < 9; ++i) h.add(100);
  h.add(1000);
  EXPECT_EQ(h.p50(), 16u);
  EXPECT_EQ(h.p90(), 16u);   // rank 90 is the last fast sample
  EXPECT_EQ(h.percentile(0.91), 128u);
  EXPECT_EQ(h.p99(), 128u);
  EXPECT_EQ(h.percentile(1.0), 1024u);
}

TEST(LatencyHistogram, PercentileEmptyAndSingle) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.p50(), 0u);
  EXPECT_EQ(empty.p99(), 0u);
  LatencyHistogram one;
  one.add(5);  // lands in the <=8 bucket
  EXPECT_EQ(one.p50(), 8u);
  EXPECT_EQ(one.p99(), 8u);
  LatencyHistogram zero;
  zero.add(0);  // value 0 lands in the <=1 bucket
  EXPECT_EQ(zero.p50(), 1u);
}

TEST(LatencyHistogram, PercentileSurvivesMerge) {
  LatencyHistogram a, b;
  for (int i = 0; i < 50; ++i) a.add(2);
  for (int i = 0; i < 50; ++i) b.add(200);
  a.merge(b);
  EXPECT_EQ(a.p50(), 2u);
  EXPECT_EQ(a.p99(), 256u);
}

}  // namespace
}  // namespace dvmc
