// End-to-end smoke: small systems complete workloads without any checker
// detections across protocols, consistency models, and workloads.
#include <gtest/gtest.h>

#include "system/runner.hpp"
#include "system/system.hpp"

namespace dvmc {
namespace {

struct SmokeCase {
  Protocol protocol;
  ConsistencyModel model;
  WorkloadKind workload;
};

class SmokeAll : public ::testing::TestWithParam<SmokeCase> {};

TEST_P(SmokeAll, CompletesWithoutDetections) {
  const SmokeCase& c = GetParam();
  SystemConfig cfg = SystemConfig::withDvmc(c.protocol, c.model);
  cfg.numNodes = 4;
  cfg.workload = c.workload;
  cfg.targetTransactions = c.workload == WorkloadKind::kBarnes ? 3 : 60;
  cfg.maxCycles = 30'000'000;
  System sys(cfg);
  RunResult r = sys.run();
  EXPECT_TRUE(r.completed) << "cycles=" << r.cycles
                           << " txns=" << r.transactions;
  for (const auto& d : sys.sink().detections()) {
    ADD_FAILURE() << checkerKindName(d.kind) << " @" << d.cycle << " node "
                  << d.node << " addr=0x" << std::hex << d.addr << std::dec
                  << ": " << d.what;
    break;
  }
  EXPECT_GT(r.transactions, 0u);
}

std::vector<SmokeCase> allCases() {
  std::vector<SmokeCase> v;
  for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
    for (ConsistencyModel m :
         {ConsistencyModel::kSC, ConsistencyModel::kTSO,
          ConsistencyModel::kPSO, ConsistencyModel::kRMO}) {
      for (WorkloadKind w :
           {WorkloadKind::kMicroMix, WorkloadKind::kApache,
            WorkloadKind::kOltp, WorkloadKind::kJbb, WorkloadKind::kSlash,
            WorkloadKind::kBarnes}) {
        v.push_back({p, m, w});
      }
    }
  }
  return v;
}

std::string caseName(const ::testing::TestParamInfo<SmokeCase>& info) {
  const SmokeCase& c = info.param;
  return std::string(protocolName(c.protocol)) + "_" + modelName(c.model) +
         "_" + workloadName(c.workload);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, SmokeAll,
                         ::testing::ValuesIn(allCases()), caseName);

}  // namespace
}  // namespace dvmc
