// Property/fuzz sweep: randomized workload parameterizations across random
// system configurations. The invariant under test is the project's core
// claim — fault-free runs complete with zero checker detections — pushed
// across a much wider parameter space than the curated presets.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"

namespace dvmc {
namespace {

class RandomizedConfig : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedConfig, FaultFreeRunIsClean) {
  Rng rng(0xF022 + GetParam());

  WorkloadParams p;
  p.kind = WorkloadKind::kMicroMix;
  p.privateBlocks = 16 + rng.below(512);
  p.sharedBlocks = 8 + rng.below(256);
  p.hotBlocks = 1 + rng.below(16);
  p.hotFraction = rng.uniform();
  p.numLocks = 1 + rng.below(32);
  p.txOps = 4 + rng.below(64);
  p.sharedFraction = rng.uniform();
  p.writeFraction = rng.uniform() * 0.6;
  p.lockFraction = rng.uniform();
  p.csOps = 1 + rng.below(12);
  p.computeMin = 1;
  p.computeMax = static_cast<std::uint16_t>(1 + rng.below(12));
  p.frac32Bit = rng.uniform() * 0.4;
  p.barrierEveryTx = rng.chance(0.25) ? 1 + rng.below(3) : 0;

  SystemConfig cfg = SystemConfig::withDvmc(
      rng.chance(0.5) ? Protocol::kDirectory : Protocol::kSnooping,
      static_cast<ConsistencyModel>(rng.below(4)));
  cfg.numNodes = 2 + rng.below(7);  // 2..8
  cfg.workloadOverride = p;
  cfg.targetTransactions = p.barrierEveryTx != 0 ? 2 + rng.below(3)
                                                 : 40 + rng.below(80);
  cfg.l1 = {std::size_t(1) << rng.below(6), 1 + rng.below(3)};
  cfg.l2 = {std::size_t(4) << rng.below(6), 2 + rng.below(6)};
  cfg.cpu.robSize = 8 << rng.below(4);
  cfg.cpu.wbCapacity = 4 << rng.below(5);
  cfg.cpu.wbConcurrency = 1 + rng.below(7);
  cfg.cpu.storePrefetch = rng.chance(0.8);
  cfg.cpu.wbCoalescing = rng.chance(0.8);
  cfg.coherenceChecker =
      rng.chance(0.3) ? SystemConfig::CoherenceCheckerKind::kShadow
                      : SystemConfig::CoherenceCheckerKind::kEpoch;
  cfg.seed = 1000 + GetParam();
  cfg.maxCycles = 80'000'000;

  System sys(cfg);
  RunResult r = sys.run();
  EXPECT_TRUE(r.completed)
      << "hang: nodes=" << cfg.numNodes << " l2sets=" << cfg.l2.sets
      << " model=" << modelName(cfg.model)
      << " proto=" << protocolName(cfg.protocol);
  EXPECT_EQ(r.detections, 0u)
      << (sys.sink().any() ? sys.sink().first().what : "") << " nodes="
      << cfg.numNodes << " l2sets=" << cfg.l2.sets << " ways=" << cfg.l2.ways
      << " model=" << modelName(cfg.model)
      << " proto=" << protocolName(cfg.protocol)
      << " checker=" << (cfg.coherenceChecker ==
                                 SystemConfig::CoherenceCheckerKind::kShadow
                             ? "shadow"
                             : "epoch");
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedConfig, ::testing::Range(0, 24));

}  // namespace
}  // namespace dvmc
