// Property/fuzz sweep: randomized workload parameterizations across random
// system configurations. The invariant under test is the project's core
// claim — fault-free runs complete with zero checker detections — pushed
// across a much wider parameter space than the curated presets, plus the
// differential half of the story: the offline oracle, given the run's
// commit trace, must agree that the execution was consistent. A checker
// detection without an oracle violation would be a false alarm; an oracle
// violation without a detection would be a checker escape.
#include <gtest/gtest.h>

#include "system/runner.hpp"
#include "system/system.hpp"
#include "verify/oracle.hpp"
#include "workload/fuzz_config.hpp"

namespace dvmc {
namespace {

class RandomizedConfig : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedConfig, FaultFreeRunIsClean) {
  SystemConfig cfg = makeFuzzConfig(GetParam());
  cfg.trace.capture = true;

  System sys(cfg);
  RunResult r = sys.run();
  EXPECT_TRUE(r.completed)
      << "hang: nodes=" << cfg.numNodes << " l2sets=" << cfg.l2.sets
      << " model=" << modelName(cfg.model)
      << " proto=" << protocolName(cfg.protocol);
  EXPECT_EQ(r.detections, 0u)
      << (sys.sink().any() ? sys.sink().first().what : "") << " nodes="
      << cfg.numNodes << " l2sets=" << cfg.l2.sets << " ways=" << cfg.l2.ways
      << " model=" << modelName(cfg.model)
      << " proto=" << protocolName(cfg.protocol)
      << " checker=" << (cfg.coherenceChecker ==
                                 SystemConfig::CoherenceCheckerKind::kShadow
                             ? "shadow"
                             : "epoch");

  // Differential check: the offline oracle must independently agree.
  ASSERT_NE(r.trace, nullptr);
  const verify::OracleResult o = verify::checkTrace(*r.trace);
  EXPECT_TRUE(o.clean)
      << "oracle disagrees with clean checkers (false positive): "
      << (o.violations.empty() ? "?" : o.violations[0].message)
      << " model=" << modelName(cfg.model)
      << " proto=" << protocolName(cfg.protocol)
      << " nodes=" << cfg.numNodes;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedConfig, ::testing::Range(0, 24));

}  // namespace
}  // namespace dvmc
