// Forensics flight-recorder tests: recorder bounds and envelope schema,
// the end-to-end capture path (injected coherence fault -> detection ->
// bundle), and the JSON shape dvmc_inspect consumes — checker dumps with
// epoch rows, the per-node cache-line states, the trace window, and the
// SafetyNet checkpoint epoch.
#include <gtest/gtest.h>

#include <sstream>
#include <utility>
#include <vector>

#include "coherence/memory_storage.hpp"
#include "common/flat_map.hpp"
#include "faults/injector.hpp"
#include "obs/forensics.hpp"
#include "obs/json.hpp"
#include "obs/timeseries.hpp"
#include "system/system.hpp"

namespace dvmc {
namespace {

// --- recorder bounds ------------------------------------------------------

TEST(ForensicsRecorder, KeepsFirstBundlesCountsRest) {
  ForensicsRecorder rec({/*windowEvents=*/16, /*maxBundles=*/2});
  for (int i = 0; i < 5; ++i) {
    Json b = Json::object();
    b.set("i", Json::num(static_cast<std::uint64_t>(i)));
    rec.addBundle(std::move(b));
  }
  EXPECT_EQ(rec.bundleCount(), 2u);
  EXPECT_EQ(rec.droppedBundles(), 3u);

  const Json env = rec.toJson();
  EXPECT_EQ(env.find("schema")->asString(), kForensicsSchemaName);
  EXPECT_EQ(env.find("version")->asUint(),
            static_cast<std::uint64_t>(kForensicsSchemaVersion));
  EXPECT_EQ(env.find("droppedBundles")->asUint(), 3u);
  ASSERT_EQ(env.find("bundles")->size(), 2u);
  // The kept bundles are the first two, in detection order.
  EXPECT_EQ(env.find("bundles")->at(0).find("i")->asUint(), 0u);
  EXPECT_EQ(env.find("bundles")->at(1).find("i")->asUint(), 1u);
}

TEST(ForensicsRecorder, SerializedEnvelopeParsesBack) {
  ForensicsRecorder rec;
  rec.addBundle(Json::object().set("x", Json::num(std::uint64_t{7})));
  std::ostringstream os;
  rec.writeTo(os);
  std::string err;
  std::optional<Json> parsed = Json::parse(os.str(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->find("schema")->asString(), kForensicsSchemaName);
  EXPECT_EQ(parsed->find("bundles")->at(0).find("x")->asUint(), 7u);
}

// --- end-to-end capture ---------------------------------------------------

/// Runs a DVMC-protected system, injects coherence-state faults until a
/// checker fires, and returns the recorder's serialized+reparsed envelope.
Json captureBundle(ForensicsRecorder& rec, Protocol protocol) {
  SystemConfig cfg = SystemConfig::withDvmc(protocol, ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 1'000'000;  // effectively unbounded
  cfg.maxCycles = 20'000'000;
  cfg.ber.interval = 20'000;
  cfg.forensics = &rec;  // no cfg.tracer: the System must arm its own
  System sys(cfg);
  FaultInjector inj(sys, 0xF0F0);

  sys.runUntil([&] { return sys.sim().now() >= 30'000; });
  EXPECT_EQ(sys.sink().count(), 0u);
  for (int attempt = 0; attempt < 50 && !sys.sink().any(); ++attempt) {
    inj.inject(FaultType::kCacheStateFlip);
    sys.runUntil([&, until = sys.sim().now() + 100'000] {
      return sys.sink().any() || sys.sim().now() >= until;
    });
  }
  EXPECT_TRUE(sys.sink().any()) << "cache-state flips never manifested";

  std::ostringstream os;
  rec.writeTo(os);
  std::string err;
  std::optional<Json> parsed = Json::parse(os.str(), &err);
  EXPECT_TRUE(parsed.has_value()) << err;
  return parsed ? *parsed : Json();
}

TEST(ForensicsCapture, InjectedCoherenceFaultProducesParseableBundle) {
  ForensicsRecorder rec;
  const Json env = captureBundle(rec, Protocol::kDirectory);
  ASSERT_GE(rec.bundleCount(), 1u);

  const Json* bundles = env.find("bundles");
  ASSERT_NE(bundles, nullptr);
  ASSERT_GE(bundles->size(), 1u);
  const Json& b = bundles->at(0);

  // The detection block names the firing checker and violating address.
  const Json* det = b.find("detection");
  ASSERT_NE(det, nullptr);
  EXPECT_FALSE(det->find("checker")->asString().empty());
  EXPECT_NE(det->find("addr"), nullptr);
  EXPECT_FALSE(det->find("what")->asString().empty());
  EXPECT_GT(det->find("cycle")->asUint(), 0u);

  // The checker state dump carries the CET/MET epoch rows for the address.
  const Json* checkers = b.find("checkers");
  ASSERT_NE(checkers, nullptr);
  const Json* cet = checkers->find("cacheEpochTable");
  ASSERT_NE(cet, nullptr);
  EXPECT_NE(cet->find("openEpochs"), nullptr);
  const Json* met = checkers->find("memoryEpochTable");
  ASSERT_NE(met, nullptr);
  EXPECT_NE(met->find("metEntries"), nullptr);
  if (const Json* row = met->find("focusEpochRow")) {
    EXPECT_NE(row->find("lastRWEnd"), nullptr);
    EXPECT_NE(row->find("lastRWEndHash"), nullptr);
  }
  // UO and AR checkers were enabled, so their dumps ride along.
  EXPECT_NE(checkers->find("verificationCache"), nullptr);
  EXPECT_NE(checkers->find("reorderChecker"), nullptr);

  // Cache-line state at every node, L1 and L2.
  const Json* caches = b.find("cacheLines");
  ASSERT_NE(caches, nullptr);
  ASSERT_EQ(caches->size(), 4u);
  for (std::size_t n = 0; n < caches->size(); ++n) {
    EXPECT_NE(caches->at(n).find("l1"), nullptr);
    EXPECT_NE(caches->at(n).find("l2"), nullptr);
  }

  // The last-K window came from the internally-armed tracer, and the
  // detection instant itself is part of it.
  const Json* tw = b.find("traceWindow");
  ASSERT_NE(tw, nullptr);
  const Json* events = tw->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);
  bool sawDetection = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    if (events->at(i).find("kind")->asString() == "detection") {
      sawDetection = true;
    }
  }
  EXPECT_TRUE(sawDetection);

  // SafetyNet checkpoint epoch: recovery was possible at detection time.
  const Json* sn = b.find("safetyNet");
  ASSERT_NE(sn, nullptr);
  EXPECT_GT(sn->find("checkpoints")->asUint(), 0u);
  EXPECT_GT(sn->find("recoveryWindow")->asUint(), 0u);
}

TEST(ForensicsCapture, SnoopingProtocolCapturesToo) {
  ForensicsRecorder rec;
  const Json env = captureBundle(rec, Protocol::kSnooping);
  const Json* bundles = env.find("bundles");
  ASSERT_NE(bundles, nullptr);
  ASSERT_GE(bundles->size(), 1u);
  EXPECT_FALSE(
      bundles->at(0).find("detection")->find("checker")->asString().empty());
}

// --- auto-recovery end-to-end ---------------------------------------------

// Injects coherence faults into an auto-recovering system while maintaining
// a *full-snapshot* oracle on the side: every performed store is mirrored
// into `expected`, a deep copy of `expected` is taken at every SafetyNet
// checkpoint (exactly what the pre-undo-log implementation captured), and on
// recovery `expected` is rewound to the rollback target's copy. The
// undo-log restore must land the system's memory image on the same bytes,
// and the machine must keep retiring instructions afterwards.
TEST(ForensicsCapture, AutoRecoveryMatchesFullSnapshotOracle) {
  ForensicsRecorder rec;
  SystemConfig cfg =
      SystemConfig::withDvmc(Protocol::kDirectory, ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 1'000'000;  // effectively unbounded
  cfg.maxCycles = 20'000'000;
  cfg.ber.interval = 20'000;
  cfg.autoRecover = true;
  cfg.forensics = &rec;
  System sys(cfg);
  FaultInjector inj(sys, 0xBEEF);

  FlatMap<Addr, DataBlock> expected;
  sys.setStoreAuditHook(
      [&](NodeId, Addr addr, std::size_t size, std::uint64_t value) {
        const Addr blk = blockAddr(addr);
        auto [it, fresh] =
            expected.try_emplace(blk, MemoryStorage::initialPattern(blk));
        it->second.write(blockOffset(addr), size, value);
      });

  // Run predicates are evaluated after *every* simulator event, so this
  // observer sees the world immediately after each checkpoint / recovery
  // event with no intervening stores.
  std::vector<std::pair<Cycle, FlatMap<Addr, DataBlock>>> fullSnaps;
  std::uint64_t seenCkpts = 0;
  std::uint64_t seenRecoveries = 0;
  std::uint64_t oracleMismatches = 0;
  auto observe = [&] {
    const std::uint64_t ck = sys.ber()->stats().get("ber.checkpoints");
    if (ck != seenCkpts) {
      seenCkpts = ck;
      fullSnaps.emplace_back(sys.ber()->newestCheckpoint(), expected);
    }
    const std::uint64_t rc = sys.ber()->recoveries();
    if (rc != seenRecoveries) {
      seenRecoveries = rc;
      // recoverBefore() squashed every checkpoint newer than the target,
      // so the rollback target is now the newest surviving checkpoint.
      const Cycle target = sys.ber()->newestCheckpoint();
      while (!fullSnaps.empty() && fullSnaps.back().first > target) {
        fullSnaps.pop_back();
      }
      if (fullSnaps.empty() || fullSnaps.back().first != target) {
        ++oracleMismatches;  // lost track of the target checkpoint
        return;
      }
      expected = fullSnaps.back().second;
      if (!(sys.memoryImage() == expected)) ++oracleMismatches;
    }
  };

  sys.runUntil([&] {
    observe();
    return sys.sim().now() >= 30'000;
  });
  ASSERT_EQ(sys.sink().count(), 0u);
  ASSERT_GT(seenCkpts, 0u);

  for (int attempt = 0; attempt < 50 && seenRecoveries == 0; ++attempt) {
    inj.inject(FaultType::kCacheStateFlip);
    sys.runUntil([&, until = sys.sim().now() + 100'000] {
      observe();
      return seenRecoveries > 0 || sys.sim().now() >= until;
    });
  }
  ASSERT_GT(seenRecoveries, 0u) << "injected faults never triggered recovery";
  EXPECT_EQ(oracleMismatches, 0u)
      << "undo-log restore diverged from the full-snapshot oracle";
  EXPECT_TRUE(sys.memoryImage() == expected);

  // The rolled-back machine resumes: cores retire further instructions, the
  // audit mirror keeps agreeing with the architectural shadow, and nothing
  // lands outside the recovery window.
  auto totalRetired = [&] {
    std::uint64_t sum = 0;
    for (std::size_t n = 0; n < sys.numNodes(); ++n) {
      sum += sys.core(static_cast<NodeId>(n)).retired();
    }
    return sum;
  };
  const std::uint64_t retiredAtRecovery = totalRetired();
  const RunResult r = sys.runUntil([&, until = sys.sim().now() + 200'000] {
    observe();
    return sys.sim().now() >= until;
  });
  EXPECT_GT(totalRetired(), retiredAtRecovery);
  EXPECT_EQ(oracleMismatches, 0u);
  EXPECT_TRUE(sys.memoryImage() == expected);
  EXPECT_GE(r.recoveries, 1u);
  EXPECT_EQ(r.unrecoverable, 0u);

  // The detection that triggered recovery was also captured for forensics,
  // with the SafetyNet epoch block recording a live recovery window.
  ASSERT_GE(rec.bundleCount(), 1u);
  const Json env = rec.toJson();
  const Json* sn = env.find("bundles")->at(0).find("safetyNet");
  ASSERT_NE(sn, nullptr);
  EXPECT_GT(sn->find("checkpoints")->asUint(), 0u);
}

// --- interval sampler -----------------------------------------------------

TEST(TimeSeriesSampling, RunResultCarriesSampledSeries) {
  SystemConfig cfg =
      SystemConfig::withDvmc(Protocol::kDirectory, ConsistencyModel::kTSO);
  cfg.numNodes = 2;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 50;
  cfg.maxCycles = 5'000'000;
  cfg.sampleEvery = 1'000;
  cfg.sampleCapacity = 64;
  System sys(cfg);
  const RunResult r = sys.run();

  ASSERT_NE(r.series, nullptr);
  EXPECT_EQ(r.series->columns(), defaultSampleColumns());
  ASSERT_GT(r.series->size(), 1u);
  // Cycles ascend in sample steps; counters are monotone non-decreasing.
  const std::size_t last = r.series->size() - 1;
  EXPECT_GT(r.series->cycleAt(last), r.series->cycleAt(0));
  for (std::size_t c = 0; c < r.series->columns().size(); ++c) {
    EXPECT_GE(r.series->valueAt(last, c), r.series->valueAt(0, c))
        << r.series->columns()[c];
  }
  // The ring bound held.
  EXPECT_LE(r.series->size(), 64u);

  // The serialized series round-trips through the JSON parser.
  const Json j = r.series->toJson();
  std::string err;
  std::optional<Json> parsed = Json::parse(j.dump(2), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->find("columns")->size(), r.series->columns().size());
  EXPECT_EQ(parsed->find("samples")->size(), r.series->size());
}

TEST(TimeSeriesSampling, OffByDefault) {
  SystemConfig cfg =
      SystemConfig::unprotected(Protocol::kDirectory, ConsistencyModel::kTSO);
  cfg.numNodes = 2;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 20;
  System sys(cfg);
  EXPECT_EQ(sys.run().series, nullptr);
}

}  // namespace
}  // namespace dvmc
