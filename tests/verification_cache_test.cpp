// Unit tests for the Verification Cache (Uniprocessor Ordering checker's
// store mirror + RMO parked-value optimization, §4.1).
#include <gtest/gtest.h>

#include "common/error_sink.hpp"
#include "dvmc/verification_cache.hpp"

namespace dvmc {
namespace {

TEST(VerificationCache, StoreLifecycle) {
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  EXPECT_TRUE(vc.canAllocate(0x100, 8));
  vc.storeCommit(0x100, 8, 42);
  EXPECT_EQ(vc.entries(), 1u);
  EXPECT_EQ(vc.lookupStore(0x100, 8), std::optional<std::uint64_t>(42));
  vc.storePerformed(0x100, 8, 42, 10);
  EXPECT_EQ(vc.entries(), 0u);
  EXPECT_FALSE(sink.any());
}

TEST(VerificationCache, ChainedStoresKeepLatestValue) {
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  vc.storeCommit(0x100, 8, 1, 10);
  vc.storeCommit(0x100, 8, 2, 11);
  vc.storeCommit(0x100, 8, 3, 12);
  EXPECT_EQ(vc.lookupStore(0x100, 8), std::optional<std::uint64_t>(3));
  // Stores perform oldest-first; each deallocation is value-checked.
  vc.storePerformed(0x100, 8, 1, 1);
  vc.storePerformed(0x100, 8, 2, 2);
  EXPECT_EQ(vc.entries(), 1u);
  EXPECT_FALSE(sink.any());
  vc.storePerformed(0x100, 8, 3, 3);
  EXPECT_EQ(vc.entries(), 0u);
  EXPECT_FALSE(sink.any());
}

TEST(VerificationCache, SeqFilteredLookupIgnoresYoungerStores) {
  // A load re-entering verification after a flush must not replay against
  // stores younger than itself.
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  vc.storeCommit(0x100, 8, 1, 10);  // older than the load
  vc.storeCommit(0x100, 8, 2, 30);  // younger than the load
  EXPECT_EQ(vc.lookupStoreOlderThan(0x100, 8, 20),
            std::optional<std::uint64_t>(1));
  EXPECT_FALSE(vc.lookupStoreOlderThan(0x100, 8, 5).has_value());
  EXPECT_EQ(vc.lookupStoreOlderThan(0x100, 8, 40),
            std::optional<std::uint64_t>(2));
}

TEST(VerificationCache, IntermediateDeallocMismatchDetected) {
  // Per-store deallocation checking: a corrupted middle store in a chain
  // is caught even though it is not the newest value.
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  vc.storeCommit(0x100, 8, 1, 1);
  vc.storeCommit(0x100, 8, 2, 2);
  vc.storePerformed(0x100, 8, 99, 5);  // first store performed corrupted
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kUniprocessorOrdering);
}

TEST(VerificationCache, DeallocationDetectsWriteBufferCorruption) {
  ErrorSink sink;
  VerificationCache vc(3, 8, &sink);
  vc.storeCommit(0x100, 8, 42);
  // The write buffer delivered a corrupted value to the cache.
  vc.storePerformed(0x100, 8, 43, 99);
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kUniprocessorOrdering);
  EXPECT_EQ(sink.first().node, 3u);
}

TEST(VerificationCache, PerformWithoutCommitDetected) {
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  vc.storePerformed(0x200, 8, 5, 7);  // fabricated store (fault)
  ASSERT_TRUE(sink.any());
  EXPECT_EQ(sink.first().kind, CheckerKind::kUniprocessorOrdering);
}

TEST(VerificationCache, CapacityGatesNewWords) {
  ErrorSink sink;
  VerificationCache vc(0, 2, &sink);
  vc.storeCommit(0x100, 8, 1);
  vc.storeCommit(0x108, 8, 2);
  EXPECT_FALSE(vc.canAllocate(0x110, 8));  // full
  EXPECT_TRUE(vc.canAllocate(0x100, 8));   // merges with existing word
  vc.storePerformed(0x100, 8, 1, 0);
  EXPECT_TRUE(vc.canAllocate(0x110, 8));
}

TEST(VerificationCache, WordAliasing) {
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  vc.storeCommit(0x104, 8, 9);  // not naturally aligned to 8... addr&~7
  EXPECT_EQ(vc.lookupStore(0x100, 8), std::optional<std::uint64_t>(9));
}

TEST(VerificationCache, ParkedValuesSeparateFromStores) {
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  vc.parkLoadValue(0x100, 8, 7);
  // Ordered-load replay must not hit a parked-only entry.
  EXPECT_FALSE(vc.lookupStore(0x100, 8).has_value());
  EXPECT_FALSE(vc.lookupStoreOlderThan(0x100, 8, 999).has_value());
  EXPECT_EQ(vc.consumeParked(0x100, 8), std::optional<std::uint64_t>(7));
  // Consumed: gone.
  EXPECT_FALSE(vc.consumeParked(0x100, 8).has_value());
  EXPECT_EQ(vc.entries(), 0u);
}

TEST(VerificationCache, StoreChainAndParkCoexist) {
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  vc.storeCommit(0x100, 8, 50, 5);
  vc.parkLoadValue(0x100, 8, 49);
  // The pending store is visible through the store lookup; the parked
  // value lives independently (the replay logic prefers the store lookup).
  EXPECT_EQ(vc.lookupStore(0x100, 8), std::optional<std::uint64_t>(50));
  EXPECT_EQ(vc.consumeParked(0x100, 8), std::optional<std::uint64_t>(49));
  // The store chain survives the consume.
  EXPECT_EQ(vc.entries(), 1u);
  vc.storePerformed(0x100, 8, 50, 0);
  EXPECT_EQ(vc.entries(), 0u);
}

TEST(VerificationCache, ParkedEntrySurvivesStorePerform) {
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  vc.storeCommit(0x100, 8, 5, 1);
  vc.parkLoadValue(0x100, 8, 5);
  vc.storePerformed(0x100, 8, 5, 0);
  // The parked flag keeps the word alive for the pending replay.
  EXPECT_EQ(vc.consumeParked(0x100, 8), std::optional<std::uint64_t>(5));
  EXPECT_EQ(vc.entries(), 0u);
}

TEST(VerificationCache, ClearDropsEverything) {
  ErrorSink sink;
  VerificationCache vc(0, 8, &sink);
  vc.storeCommit(0x100, 8, 1, 1);
  vc.parkLoadValue(0x200, 8, 2);
  vc.clear();
  EXPECT_EQ(vc.entries(), 0u);
  EXPECT_FALSE(vc.lookupStore(0x100, 8).has_value());
}

}  // namespace
}  // namespace dvmc
