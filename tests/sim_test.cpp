// Unit tests for the discrete-event kernel: ordering, determinism,
// reentrant scheduling, and the run/runUntil drivers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace dvmc {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameCycleFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ReentrantScheduling) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule(1, chain);
  };
  sim.schedule(1, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 5u);
}

TEST(Simulator, ZeroDelayRunsLaterSameCycle) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1, [&] {
    order.push_back(1);
    sim.schedule(0, [&] { order.push_back(2); });
  });
  sim.schedule(1, [&] { order.push_back(3); });
  sim.run();
  // The zero-delay event runs after already-queued same-cycle events.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, RunHonorsLimit) {
  Simulator sim;
  int ran = 0;
  sim.schedule(10, [&] { ++ran; });
  sim.schedule(100, [&] { ++ran; });
  sim.run(50);
  EXPECT_EQ(ran, 1);
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  int x = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(i, [&] { ++x; });
  }
  const bool hit = sim.runUntil([&] { return x == 4; });
  EXPECT_TRUE(hit);
  EXPECT_EQ(x, 4);
  EXPECT_EQ(sim.now(), 4u);
}

TEST(Simulator, RunUntilReturnsFalseWhenDrained) {
  Simulator sim;
  sim.schedule(1, [] {});
  EXPECT_FALSE(sim.runUntil([] { return false; }));
}

TEST(Simulator, EventCounting) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(1, [] {});
  sim.run();
  EXPECT_EQ(sim.eventsExecuted(), 7u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  Cycle seen = 0;
  sim.scheduleAt(123, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 123u);
}

}  // namespace
}  // namespace dvmc
