// Unit tests for the discrete-event kernel: ordering, determinism,
// reentrant scheduling, and the run/runUntil drivers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace dvmc {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameCycleFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ReentrantScheduling) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule(1, chain);
  };
  sim.schedule(1, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 5u);
}

TEST(Simulator, ZeroDelayRunsLaterSameCycle) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1, [&] {
    order.push_back(1);
    sim.schedule(0, [&] { order.push_back(2); });
  });
  sim.schedule(1, [&] { order.push_back(3); });
  sim.run();
  // The zero-delay event runs after already-queued same-cycle events.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, RunHonorsLimit) {
  Simulator sim;
  int ran = 0;
  sim.schedule(10, [&] { ++ran; });
  sim.schedule(100, [&] { ++ran; });
  sim.run(50);
  EXPECT_EQ(ran, 1);
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  int x = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(i, [&] { ++x; });
  }
  const bool hit = sim.runUntil([&] { return x == 4; });
  EXPECT_TRUE(hit);
  EXPECT_EQ(x, 4);
  EXPECT_EQ(sim.now(), 4u);
}

TEST(Simulator, RunUntilReturnsFalseWhenDrained) {
  Simulator sim;
  sim.schedule(1, [] {});
  EXPECT_FALSE(sim.runUntil([] { return false; }));
}

TEST(Simulator, EventCounting) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(1, [] {});
  sim.run();
  EXPECT_EQ(sim.eventsExecuted(), 7u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  Cycle seen = 0;
  sim.scheduleAt(123, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 123u);
}

// --- calendar-queue specifics: the 64-cycle near window, the far-future
// heap, and the seam between them ------------------------------------------

TEST(Simulator, FarFutureEventsRunInTimeOrder) {
  Simulator sim;
  std::vector<Cycle> order;
  for (Cycle d : {Cycle{1000}, Cycle{64}, Cycle{5'000'000}, Cycle{65},
                  Cycle{200}}) {
    sim.schedule(d, [&, d] { order.push_back(d); });
  }
  sim.run();
  EXPECT_EQ(order,
            (std::vector<Cycle>{64, 65, 200, 1000, 5'000'000}));
  EXPECT_EQ(sim.now(), 5'000'000u);
}

TEST(Simulator, WindowBoundaryDelays) {
  // Delays straddling the 64-cycle near window (63 → calendar, 64 → heap)
  // must still execute in time order.
  Simulator sim;
  std::vector<Cycle> order;
  for (Cycle d : {Cycle{64}, Cycle{63}, Cycle{65}, Cycle{62}, Cycle{127},
                  Cycle{128}, Cycle{129}}) {
    sim.schedule(d, [&, d] { order.push_back(d); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<Cycle>{62, 63, 64, 65, 127, 128, 129}));
}

TEST(Simulator, SameCycleFifoAcrossHeapAndCalendar) {
  // A far-future event (heap) scheduled BEFORE a near event for the same
  // cycle must run first: same-cycle execution follows scheduling order
  // regardless of which structure held the event.
  Simulator sim;
  std::vector<int> order;
  sim.schedule(100, [&] { order.push_back(1); });  // far → heap
  sim.schedule(40, [&] {
    // At cycle 40, cycle 100 is within the near window → calendar.
    sim.schedule(60, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, SameCycleFifoWhenNearScheduledFirst) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] {
    sim.schedule(70, [&] { order.push_back(1); });   // cycle 100 via heap
    sim.schedule(40, [&] {                            // cycle 70
      sim.schedule(30, [&] { order.push_back(2); });  // cycle 100 via calendar
    });
  });
  sim.run();
  // Heap event (order earlier) still precedes the calendar event at 100.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, BucketWraparoundLongChain) {
  // A self-rescheduling chain with a delay coprime to the window size
  // sweeps every bucket index many times.
  Simulator sim;
  Cycle last = 0;
  int count = 0;
  std::function<void()> chain = [&] {
    EXPECT_EQ(sim.now(), last + 7);
    last = sim.now();
    if (++count < 1000) sim.schedule(7, chain);
  };
  sim.schedule(7, chain);
  sim.run();
  EXPECT_EQ(count, 1000);
  EXPECT_EQ(sim.now(), 7000u);
}

TEST(Simulator, RunLimitLandsInsideWindow) {
  // run(limit) advances now_ past cycles with no events; later scheduling
  // relative to the new now_ must stay consistent.
  Simulator sim;
  std::vector<Cycle> ran;
  sim.schedule(10, [&] { ran.push_back(sim.now()); });
  sim.schedule(90, [&] { ran.push_back(sim.now()); });
  sim.run(47);
  EXPECT_EQ(sim.now(), 47u);
  EXPECT_EQ(ran, (std::vector<Cycle>{10}));
  sim.schedule(3, [&] { ran.push_back(sim.now()); });  // cycle 50
  sim.schedule(63, [&] { ran.push_back(sim.now()); });  // cycle 110
  sim.run();
  EXPECT_EQ(ran, (std::vector<Cycle>{10, 50, 90, 110}));
}

TEST(Simulator, NodeRecyclingKeepsOrdering) {
  // Push the kernel through many alloc/release cycles (slab reuse) and
  // check counting + ordering stay exact.
  Simulator sim;
  std::uint64_t lastSeen = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) {
      sim.schedule(static_cast<Cycle>(1 + (i * 13) % 200),
                   [&, i] { lastSeen = sim.now() * 1000 + i; });
    }
    sim.run();
    EXPECT_TRUE(sim.empty());
  }
  EXPECT_EQ(sim.eventsExecuted(), 5000u);
  EXPECT_NE(lastSeen, 0u);
}

TEST(Simulator, RandomizedAgainstReferenceOrdering) {
  // Drive the kernel with a deterministic pseudo-random mix of near and far
  // delays (including reentrant schedules) and compare the execution order
  // against a stable-sorted reference on (when, scheduling index).
  struct Ref {
    Cycle when;
    std::uint64_t order;
  };
  Simulator sim;
  std::vector<Ref> ref;
  std::vector<std::uint64_t> executed;
  std::uint64_t lcg = 12345;
  std::uint64_t nextId = 0;
  auto rnd = [&] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  std::function<void(std::uint64_t)> body = [&](std::uint64_t id) {
    executed.push_back(id);
    if (nextId < 3000 && rnd() % 3 == 0) {
      // Reentrant: spawn a child with a delay crossing the window boundary
      // every so often.
      const Cycle d = rnd() % 5 == 0 ? 60 + rnd() % 20 : rnd() % 64;
      const std::uint64_t child = nextId++;
      ref.push_back({sim.now() + d, child});
      sim.schedule(d, [&, child] { body(child); });
    }
  };
  for (int i = 0; i < 500; ++i) {
    const Cycle when = rnd() % 300;
    const std::uint64_t id = nextId++;
    ref.push_back({when, id});
    sim.scheduleAt(when, [&, id] { body(id); });
  }
  sim.run();

  std::stable_sort(ref.begin(), ref.end(), [](const Ref& a, const Ref& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.order < b.order;
  });
  ASSERT_EQ(executed.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(executed[i], ref[i].order) << "position " << i;
  }
}

}  // namespace
}  // namespace dvmc
