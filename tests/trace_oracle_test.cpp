// The offline consistency oracle (verify/): serialization round-trips,
// malformed-input rejection, a hand-built litmus conformance suite
// (forbidden outcomes rejected, allowed outcomes accepted, per model), and
// the differential contract against live runs — fault-free captures come
// back CONSISTENT, and a memory-corrupting fault the checkers detect is
// independently provable from the trace alone, through a file round-trip
// (exactly what `dvmc_oracle check` does with a CI escape artifact).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "consistency/op.hpp"
#include "faults/injector.hpp"
#include "system/system.hpp"
#include "verify/oracle.hpp"
#include "verify/trace.hpp"
#include "workload/fuzz_config.hpp"

namespace dvmc {
namespace {

using verify::CapturedTrace;
using verify::TraceOp;
using verify::TraceRecord;

// Addresses below kZeroInitBoundary read 0 before any write.
constexpr Addr kX = 0x1000;
constexpr Addr kY = 0x1040;

TraceRecord rec(TraceOp op, NodeId node, SeqNum seq, ConsistencyModel m,
                Addr addr, std::uint64_t value, Cycle pc) {
  TraceRecord r;
  r.op = op;
  r.node = std::uint8_t(node);
  r.seq = seq;
  r.model = std::uint8_t(m);
  r.addr = addr;
  r.value = value;
  r.readValue = value;
  r.performCycle = pc;
  r.flags = verify::kFlagPerformed;
  return r;
}

TraceRecord membarRec(NodeId node, SeqNum seq, ConsistencyModel m,
                      std::uint8_t mask, Cycle pc) {
  TraceRecord r = rec(TraceOp::kMembar, node, seq, m, 0, 0, pc);
  r.membarMask = mask;
  return r;
}

CapturedTrace makeTrace(ConsistencyModel declared, std::uint32_t cores,
                        std::vector<TraceRecord> records) {
  CapturedTrace t;
  t.declaredModel = std::uint8_t(declared);
  t.protocol = 0;
  t.numCores = cores;
  t.seed = 42;
  t.records = std::move(records);
  return t;
}

// --- serialization ---------------------------------------------------------

TEST(TraceSerialization, RoundTripsBitExactly) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kPSO, 2,
      {rec(TraceOp::kStore, 0, 1, ConsistencyModel::kPSO, kX, 7, 10),
       membarRec(0, 2, ConsistencyModel::kPSO, membar::kStbar, 12),
       rec(TraceOp::kSwap, 1, 1, ConsistencyModel::kTSO, kY, 9, 20)});
  t.records[2].readValue = 3;
  t.records[2].flags |= verify::kFlag32Bit;

  const std::vector<std::uint8_t> bytes = t.serialize();
  ASSERT_EQ(bytes.size(), CapturedTrace::byteOffset(t.records.size()));

  CapturedTrace back;
  std::string err;
  ASSERT_TRUE(CapturedTrace::parse(bytes.data(), bytes.size(), &back, &err))
      << err;
  EXPECT_EQ(back.declaredModel, t.declaredModel);
  EXPECT_EQ(back.numCores, t.numCores);
  EXPECT_EQ(back.seed, t.seed);
  EXPECT_EQ(back.truncated, t.truncated);
  ASSERT_EQ(back.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back.records[i], &t.records[i],
                          sizeof(TraceRecord)),
              0)
        << "record " << i;
  }
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(TraceSerialization, RejectsCorruptInput) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kSC, 1,
      {rec(TraceOp::kLoad, 0, 1, ConsistencyModel::kSC, kX, 0, 5)});
  std::vector<std::uint8_t> bytes = t.serialize();

  CapturedTrace out;
  std::string err;
  EXPECT_FALSE(CapturedTrace::parse(bytes.data(), 10, &out, &err));
  EXPECT_NE(err.find("byte"), std::string::npos) << err;

  std::vector<std::uint8_t> badMagic = bytes;
  badMagic[0] ^= 0xFF;
  EXPECT_FALSE(
      CapturedTrace::parse(badMagic.data(), badMagic.size(), &out, &err));

  std::vector<std::uint8_t> badVersion = bytes;
  badVersion[8] = 0xEE;
  EXPECT_FALSE(
      CapturedTrace::parse(badVersion.data(), badVersion.size(), &out, &err));

  std::vector<std::uint8_t> shortRecord = bytes;
  shortRecord.pop_back();
  EXPECT_FALSE(CapturedTrace::parse(shortRecord.data(), shortRecord.size(),
                                    &out, &err));
}

TEST(TraceOracle, RefusesTruncatedCapture) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kTSO, 1,
      {rec(TraceOp::kLoad, 0, 1, ConsistencyModel::kTSO, kX, 0, 5)});
  t.truncated = true;
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kMalformed);
}

TEST(TraceOracle, RejectsNonMonotoneSequenceNumbers) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kTSO, 1,
      {rec(TraceOp::kLoad, 0, 5, ConsistencyModel::kTSO, kX, 0, 5),
       rec(TraceOp::kLoad, 0, 5, ConsistencyModel::kTSO, kX, 0, 9)});
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kMalformed);
}

// --- litmus conformance ----------------------------------------------------

// Store buffering (SB): both cores buffer their store past their load.
//   n0: x = 1; r0 = y (0)        n1: y = 1; r1 = x (0)
// r0 == r1 == 0 is forbidden under SC, allowed under TSO and weaker.
CapturedTrace storeBuffering(ConsistencyModel m) {
  return makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       rec(TraceOp::kLoad, 0, 2, m, kY, 0, 50),
       rec(TraceOp::kStore, 1, 1, m, kY, 1, 101),
       rec(TraceOp::kLoad, 1, 2, m, kX, 0, 51)});
}

TEST(LitmusConformance, StoreBufferingForbiddenUnderSC) {
  const verify::OracleResult res = verify::checkTrace(
      storeBuffering(ConsistencyModel::kSC));
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

TEST(LitmusConformance, StoreBufferingAllowedUnderTSO) {
  EXPECT_TRUE(
      verify::checkTrace(storeBuffering(ConsistencyModel::kTSO)).clean);
  EXPECT_TRUE(
      verify::checkTrace(storeBuffering(ConsistencyModel::kPSO)).clean);
  EXPECT_TRUE(
      verify::checkTrace(storeBuffering(ConsistencyModel::kRMO)).clean);
}

// SB with Membar #StoreLoad between store and load on both cores: the
// relaxed outcome becomes forbidden again on every model.
TEST(LitmusConformance, StoreBufferingWithMembarForbiddenUnderTSO) {
  const ConsistencyModel m = ConsistencyModel::kTSO;
  CapturedTrace t = makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       membarRec(0, 2, m, membar::kStoreLoad, 110),
       rec(TraceOp::kLoad, 0, 3, m, kY, 0, 120),
       rec(TraceOp::kStore, 1, 1, m, kY, 1, 101),
       membarRec(1, 2, m, membar::kStoreLoad, 111),
       rec(TraceOp::kLoad, 1, 3, m, kX, 0, 121)});
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

// Message passing (MP): n0 publishes data then sets a flag; n1 sees the
// flag but stale data. Forbidden while stores and loads stay ordered
// (SC/TSO); allowed once stores reorder (PSO) or loads reorder (RMO).
CapturedTrace messagePassing(ConsistencyModel m, bool stbar) {
  std::vector<TraceRecord> recs;
  recs.push_back(rec(TraceOp::kStore, 0, 1, m, kX, 1, 100));  // data
  if (stbar) recs.push_back(membarRec(0, 2, m, membar::kStbar, 105));
  recs.push_back(rec(TraceOp::kStore, 0, 3, m, kY, 1, 90));   // flag first!
  recs.push_back(rec(TraceOp::kLoad, 1, 1, m, kY, 1, 95));    // sees flag
  recs.push_back(rec(TraceOp::kLoad, 1, 2, m, kX, 0, 97));    // stale data
  return makeTrace(m, 2, std::move(recs));
}

TEST(LitmusConformance, MessagePassingForbiddenUnderTSO) {
  const verify::OracleResult res = verify::checkTrace(
      messagePassing(ConsistencyModel::kTSO, false));
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

TEST(LitmusConformance, MessagePassingAllowedUnderPSO) {
  EXPECT_TRUE(verify::checkTrace(
                  messagePassing(ConsistencyModel::kPSO, false))
                  .clean);
}

TEST(LitmusConformance, MessagePassingWithStbarForbiddenUnderPSO) {
  const verify::OracleResult res = verify::checkTrace(
      messagePassing(ConsistencyModel::kPSO, true));
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

TEST(LitmusConformance, MessagePassingAllowedUnderRMO) {
  // RMO reorders the reader's loads, so even the Stbar'd writer cannot
  // make the stale read illegal.
  EXPECT_TRUE(verify::checkTrace(
                  messagePassing(ConsistencyModel::kRMO, true))
                  .clean);
}

// Coherent read-read (CoRR): one core reads the new value then the old one.
// Models that order loads forbid it; RMO does not.
CapturedTrace coRR(ConsistencyModel m) {
  return makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       rec(TraceOp::kLoad, 1, 1, m, kX, 1, 110),
       rec(TraceOp::kLoad, 1, 2, m, kX, 0, 120)});
}

TEST(LitmusConformance, CoRRForbiddenWhenLoadsOrdered) {
  for (ConsistencyModel m : {ConsistencyModel::kSC, ConsistencyModel::kTSO,
                             ConsistencyModel::kPSO}) {
    const verify::OracleResult res = verify::checkTrace(coRR(m));
    ASSERT_FALSE(res.clean) << modelName(m);
    EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle)
        << modelName(m);
  }
}

TEST(LitmusConformance, CoRRAllowedUnderRMO) {
  EXPECT_TRUE(verify::checkTrace(coRR(ConsistencyModel::kRMO)).clean);
}

// IRIW: two writers, two readers observing the writes in opposite orders.
// Forbidden under SC (no single memory order explains both readers).
TEST(LitmusConformance, IriwForbiddenUnderSC) {
  const ConsistencyModel m = ConsistencyModel::kSC;
  CapturedTrace t = makeTrace(
      m, 4,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       rec(TraceOp::kStore, 1, 1, m, kY, 1, 101),
       rec(TraceOp::kLoad, 2, 1, m, kX, 1, 110),
       rec(TraceOp::kLoad, 2, 2, m, kY, 0, 111),
       rec(TraceOp::kLoad, 3, 1, m, kY, 1, 110),
       rec(TraceOp::kLoad, 3, 2, m, kX, 0, 111)});
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

// A value no write (and not the initial pattern) ever produced: the
// wrong-data verdict that mirrors a data-corruption detection.
TEST(LitmusConformance, NeverWrittenValueIsFlagged) {
  const ConsistencyModel m = ConsistencyModel::kTSO;
  CapturedTrace t = makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       rec(TraceOp::kLoad, 1, 1, m, kX, 0xDEAD, 110)});
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind,
            verify::OracleViolation::Kind::kBadReadValue);
  EXPECT_EQ(res.violations[0].recordA, 1u);
  EXPECT_EQ(res.violations[0].byteA, CapturedTrace::byteOffset(1));
}

// Atomics serialize: a CAS that observed the store's value is ordered
// after it even where plain loads would not be.
TEST(LitmusConformance, AtomicReadValueParticipates) {
  const ConsistencyModel m = ConsistencyModel::kTSO;
  CapturedTrace t = makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 5, 100),
       rec(TraceOp::kSwap, 1, 1, m, kX, 7, 110)});
  t.records[1].readValue = 5;  // swap read the store's value, wrote 7
  EXPECT_TRUE(verify::checkTrace(t).clean);

  t.records[1].readValue = 0xBAD;
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind,
            verify::OracleViolation::Kind::kBadReadValue);
}

// --- live differential -----------------------------------------------------

// Fault-free litmus-style runs across every model capture a trace the
// oracle accepts (the differential property's clean half, on the curated
// configs rather than the fuzz sweep's random ones).
TEST(LiveDifferential, FaultFreeCapturesAreConsistent) {
  for (ConsistencyModel m : {ConsistencyModel::kSC, ConsistencyModel::kTSO,
                             ConsistencyModel::kPSO, ConsistencyModel::kRMO}) {
    SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory, m);
    cfg.numNodes = 4;
    cfg.workload = WorkloadKind::kOltp;
    cfg.targetTransactions = 30;
    cfg.maxCycles = 5'000'000;
    cfg.captureTrace = true;
    System sys(cfg);
    const RunResult r = sys.run();
    ASSERT_TRUE(r.completed) << modelName(m);
    EXPECT_EQ(r.detections, 0u) << modelName(m);
    ASSERT_NE(r.trace, nullptr) << modelName(m);
    EXPECT_GT(r.trace->records.size(), 0u) << modelName(m);
    const verify::OracleResult o = verify::checkTrace(*r.trace);
    EXPECT_TRUE(o.clean)
        << modelName(m) << ": "
        << (o.violations.empty() ? "?" : o.violations[0].message);
  }
}

// The acceptance round-trip: inject memory corruption until the checkers
// detect it AND the corrupt value reaches a committed load, write the
// trace to disk, read it back, and require the oracle to flag the same
// execution — the `dvmc_oracle check escape.trace` workflow.
TEST(LiveDifferential, MemoryCorruptionRoundTripsThroughTraceFile) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 1'000'000;  // effectively unbounded
  cfg.maxCycles = 30'000'000;
  cfg.captureTrace = true;
  System sys(cfg);
  FaultInjector inj(sys, 0x0D15EA5E);

  sys.runUntil([&] { return sys.sim().now() >= 20'000; });
  ASSERT_EQ(sys.sink().count(), 0u);

  // Re-inject until the corruption is both detected and visible to the
  // oracle (a corrupted block must be read back by a committed load).
  bool flagged = false;
  verify::OracleResult offline;
  for (int round = 0; round < 80 && !flagged; ++round) {
    inj.inject(FaultType::kMemoryDataMultiBit);
    const Cycle until = sys.sim().now() + 25'000;
    sys.runUntil([&] { return sys.sim().now() >= until; });
    const RunResult r = sys.collectResult(false, sys.sim().now());
    ASSERT_NE(r.trace, nullptr);
    offline = verify::checkTrace(*r.trace);
    flagged = !offline.clean;
  }
  ASSERT_TRUE(flagged) << "corruption never reached a committed load";
  // Differential contract: the oracle only ever flags what the runtime
  // checkers (here: the ECC model feeding the sink) also caught.
  EXPECT_GT(sys.sink().count(), 0u)
      << "oracle violation without a checker detection (escape): "
      << offline.violations[0].message;
  EXPECT_EQ(offline.violations[0].kind,
            verify::OracleViolation::Kind::kBadReadValue);

  // File round-trip, as the nightly escape artifact would be replayed.
  const RunResult r = sys.collectResult(false, sys.sim().now());
  const std::string path = ::testing::TempDir() + "oracle_roundtrip.trace";
  std::string err;
  ASSERT_TRUE(verify::writeTraceFile(path, *r.trace, &err)) << err;
  CapturedTrace back;
  ASSERT_TRUE(verify::readTraceFile(path, &back, &err)) << err;
  EXPECT_EQ(back.serialize(), r.trace->serialize());
  const verify::OracleResult replay = verify::checkTrace(back);
  ASSERT_FALSE(replay.clean);
  EXPECT_EQ(replay.violations[0].kind,
            verify::OracleViolation::Kind::kBadReadValue);
  EXPECT_EQ(replay.violations[0].message, offline.violations[0].message);
  std::remove(path.c_str());
}

// Fuzz-config capture determinism: the same parameter yields a
// bit-identical serialized trace run to run (the repro contract behind
// replaying a nightly campaign escape locally).
TEST(LiveDifferential, SameConfigSameTraceBytes) {
  SystemConfig cfg = makeFuzzConfig(3);
  cfg.captureTrace = true;
  System a(cfg);
  const RunResult ra = a.run();
  System b(cfg);
  const RunResult rb = b.run();
  ASSERT_NE(ra.trace, nullptr);
  ASSERT_NE(rb.trace, nullptr);
  EXPECT_EQ(ra.trace->serialize(), rb.trace->serialize());
}

}  // namespace
}  // namespace dvmc
