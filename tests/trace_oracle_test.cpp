// The offline consistency oracle (verify/): serialization round-trips,
// malformed-input rejection, a hand-built litmus conformance suite
// (forbidden outcomes rejected, allowed outcomes accepted, per model), and
// the differential contract against live runs — fault-free captures come
// back CONSISTENT, and a memory-corrupting fault the checkers detect is
// independently provable from the trace alone, through a file round-trip
// (exactly what `dvmc_oracle check` does with a CI escape artifact).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "consistency/op.hpp"
#include "faults/injector.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"
#include "verify/oracle.hpp"
#include "verify/streaming_oracle.hpp"
#include "verify/trace.hpp"
#include "verify/trace_sink.hpp"
#include "workload/fuzz_config.hpp"

namespace dvmc {
namespace {

using verify::CapturedTrace;
using verify::TraceOp;
using verify::TraceRecord;

// Addresses below kZeroInitBoundary read 0 before any write.
constexpr Addr kX = 0x1000;
constexpr Addr kY = 0x1040;

TraceRecord rec(TraceOp op, NodeId node, SeqNum seq, ConsistencyModel m,
                Addr addr, std::uint64_t value, Cycle pc) {
  TraceRecord r;
  r.op = op;
  r.node = std::uint8_t(node);
  r.seq = seq;
  r.model = std::uint8_t(m);
  r.addr = addr;
  r.value = value;
  r.readValue = value;
  r.performCycle = pc;
  r.flags = verify::kFlagPerformed;
  return r;
}

TraceRecord membarRec(NodeId node, SeqNum seq, ConsistencyModel m,
                      std::uint8_t mask, Cycle pc) {
  TraceRecord r = rec(TraceOp::kMembar, node, seq, m, 0, 0, pc);
  r.membarMask = mask;
  return r;
}

CapturedTrace makeTrace(ConsistencyModel declared, std::uint32_t cores,
                        std::vector<TraceRecord> records) {
  CapturedTrace t;
  t.declaredModel = std::uint8_t(declared);
  t.protocol = 0;
  t.numCores = cores;
  t.seed = 42;
  t.records = std::move(records);
  return t;
}

// --- serialization ---------------------------------------------------------

TEST(TraceSerialization, RoundTripsBitExactly) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kPSO, 2,
      {rec(TraceOp::kStore, 0, 1, ConsistencyModel::kPSO, kX, 7, 10),
       membarRec(0, 2, ConsistencyModel::kPSO, membar::kStbar, 12),
       rec(TraceOp::kSwap, 1, 1, ConsistencyModel::kTSO, kY, 9, 20)});
  t.records[2].readValue = 3;
  t.records[2].flags |= verify::kFlag32Bit;

  const std::vector<std::uint8_t> bytes = t.serialize();
  ASSERT_EQ(bytes.size(), CapturedTrace::byteOffset(t.records.size()));

  CapturedTrace back;
  std::string err;
  ASSERT_TRUE(CapturedTrace::parse(bytes.data(), bytes.size(), &back, &err))
      << err;
  EXPECT_EQ(back.declaredModel, t.declaredModel);
  EXPECT_EQ(back.numCores, t.numCores);
  EXPECT_EQ(back.seed, t.seed);
  EXPECT_EQ(back.truncated, t.truncated);
  ASSERT_EQ(back.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back.records[i], &t.records[i],
                          sizeof(TraceRecord)),
              0)
        << "record " << i;
  }
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(TraceSerialization, RejectsCorruptInput) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kSC, 1,
      {rec(TraceOp::kLoad, 0, 1, ConsistencyModel::kSC, kX, 0, 5)});
  std::vector<std::uint8_t> bytes = t.serialize();

  CapturedTrace out;
  std::string err;
  EXPECT_FALSE(CapturedTrace::parse(bytes.data(), 10, &out, &err));
  EXPECT_NE(err.find("byte"), std::string::npos) << err;

  std::vector<std::uint8_t> badMagic = bytes;
  badMagic[0] ^= 0xFF;
  EXPECT_FALSE(
      CapturedTrace::parse(badMagic.data(), badMagic.size(), &out, &err));

  std::vector<std::uint8_t> badVersion = bytes;
  badVersion[8] = 0xEE;
  EXPECT_FALSE(
      CapturedTrace::parse(badVersion.data(), badVersion.size(), &out, &err));

  std::vector<std::uint8_t> shortRecord = bytes;
  shortRecord.pop_back();
  EXPECT_FALSE(CapturedTrace::parse(shortRecord.data(), shortRecord.size(),
                                    &out, &err));
}

TEST(TraceOracle, RefusesTruncatedCapture) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kTSO, 1,
      {rec(TraceOp::kLoad, 0, 1, ConsistencyModel::kTSO, kX, 0, 5)});
  t.truncated = true;
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kMalformed);
}

TEST(TraceOracle, RejectsNonMonotoneSequenceNumbers) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kTSO, 1,
      {rec(TraceOp::kLoad, 0, 5, ConsistencyModel::kTSO, kX, 0, 5),
       rec(TraceOp::kLoad, 0, 5, ConsistencyModel::kTSO, kX, 0, 9)});
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kMalformed);
}

// --- litmus conformance ----------------------------------------------------

// Store buffering (SB): both cores buffer their store past their load.
//   n0: x = 1; r0 = y (0)        n1: y = 1; r1 = x (0)
// r0 == r1 == 0 is forbidden under SC, allowed under TSO and weaker.
CapturedTrace storeBuffering(ConsistencyModel m) {
  return makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       rec(TraceOp::kLoad, 0, 2, m, kY, 0, 50),
       rec(TraceOp::kStore, 1, 1, m, kY, 1, 101),
       rec(TraceOp::kLoad, 1, 2, m, kX, 0, 51)});
}

TEST(LitmusConformance, StoreBufferingForbiddenUnderSC) {
  const verify::OracleResult res = verify::checkTrace(
      storeBuffering(ConsistencyModel::kSC));
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

TEST(LitmusConformance, StoreBufferingAllowedUnderTSO) {
  EXPECT_TRUE(
      verify::checkTrace(storeBuffering(ConsistencyModel::kTSO)).clean);
  EXPECT_TRUE(
      verify::checkTrace(storeBuffering(ConsistencyModel::kPSO)).clean);
  EXPECT_TRUE(
      verify::checkTrace(storeBuffering(ConsistencyModel::kRMO)).clean);
}

// SB with Membar #StoreLoad between store and load on both cores: the
// relaxed outcome becomes forbidden again on every model.
TEST(LitmusConformance, StoreBufferingWithMembarForbiddenUnderTSO) {
  const ConsistencyModel m = ConsistencyModel::kTSO;
  CapturedTrace t = makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       membarRec(0, 2, m, membar::kStoreLoad, 110),
       rec(TraceOp::kLoad, 0, 3, m, kY, 0, 120),
       rec(TraceOp::kStore, 1, 1, m, kY, 1, 101),
       membarRec(1, 2, m, membar::kStoreLoad, 111),
       rec(TraceOp::kLoad, 1, 3, m, kX, 0, 121)});
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

// Message passing (MP): n0 publishes data then sets a flag; n1 sees the
// flag but stale data. Forbidden while stores and loads stay ordered
// (SC/TSO); allowed once stores reorder (PSO) or loads reorder (RMO).
CapturedTrace messagePassing(ConsistencyModel m, bool stbar) {
  std::vector<TraceRecord> recs;
  recs.push_back(rec(TraceOp::kStore, 0, 1, m, kX, 1, 100));  // data
  if (stbar) recs.push_back(membarRec(0, 2, m, membar::kStbar, 105));
  recs.push_back(rec(TraceOp::kStore, 0, 3, m, kY, 1, 90));   // flag first!
  recs.push_back(rec(TraceOp::kLoad, 1, 1, m, kY, 1, 95));    // sees flag
  recs.push_back(rec(TraceOp::kLoad, 1, 2, m, kX, 0, 97));    // stale data
  return makeTrace(m, 2, std::move(recs));
}

TEST(LitmusConformance, MessagePassingForbiddenUnderTSO) {
  const verify::OracleResult res = verify::checkTrace(
      messagePassing(ConsistencyModel::kTSO, false));
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

TEST(LitmusConformance, MessagePassingAllowedUnderPSO) {
  EXPECT_TRUE(verify::checkTrace(
                  messagePassing(ConsistencyModel::kPSO, false))
                  .clean);
}

TEST(LitmusConformance, MessagePassingWithStbarForbiddenUnderPSO) {
  const verify::OracleResult res = verify::checkTrace(
      messagePassing(ConsistencyModel::kPSO, true));
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

TEST(LitmusConformance, MessagePassingAllowedUnderRMO) {
  // RMO reorders the reader's loads, so even the Stbar'd writer cannot
  // make the stale read illegal.
  EXPECT_TRUE(verify::checkTrace(
                  messagePassing(ConsistencyModel::kRMO, true))
                  .clean);
}

// Coherent read-read (CoRR): one core reads the new value then the old one.
// Models that order loads forbid it; RMO does not.
CapturedTrace coRR(ConsistencyModel m) {
  return makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       rec(TraceOp::kLoad, 1, 1, m, kX, 1, 110),
       rec(TraceOp::kLoad, 1, 2, m, kX, 0, 120)});
}

TEST(LitmusConformance, CoRRForbiddenWhenLoadsOrdered) {
  for (ConsistencyModel m : {ConsistencyModel::kSC, ConsistencyModel::kTSO,
                             ConsistencyModel::kPSO}) {
    const verify::OracleResult res = verify::checkTrace(coRR(m));
    ASSERT_FALSE(res.clean) << modelName(m);
    EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle)
        << modelName(m);
  }
}

TEST(LitmusConformance, CoRRAllowedUnderRMO) {
  EXPECT_TRUE(verify::checkTrace(coRR(ConsistencyModel::kRMO)).clean);
}

// IRIW: two writers, two readers observing the writes in opposite orders.
// Forbidden under SC (no single memory order explains both readers).
TEST(LitmusConformance, IriwForbiddenUnderSC) {
  const ConsistencyModel m = ConsistencyModel::kSC;
  CapturedTrace t = makeTrace(
      m, 4,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       rec(TraceOp::kStore, 1, 1, m, kY, 1, 101),
       rec(TraceOp::kLoad, 2, 1, m, kX, 1, 110),
       rec(TraceOp::kLoad, 2, 2, m, kY, 0, 111),
       rec(TraceOp::kLoad, 3, 1, m, kY, 1, 110),
       rec(TraceOp::kLoad, 3, 2, m, kX, 0, 111)});
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind, verify::OracleViolation::Kind::kCycle);
}

// A value no write (and not the initial pattern) ever produced: the
// wrong-data verdict that mirrors a data-corruption detection.
TEST(LitmusConformance, NeverWrittenValueIsFlagged) {
  const ConsistencyModel m = ConsistencyModel::kTSO;
  CapturedTrace t = makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
       rec(TraceOp::kLoad, 1, 1, m, kX, 0xDEAD, 110)});
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind,
            verify::OracleViolation::Kind::kBadReadValue);
  EXPECT_EQ(res.violations[0].recordA, 1u);
  EXPECT_EQ(res.violations[0].byteA, CapturedTrace::byteOffset(1));
}

// Atomics serialize: a CAS that observed the store's value is ordered
// after it even where plain loads would not be.
TEST(LitmusConformance, AtomicReadValueParticipates) {
  const ConsistencyModel m = ConsistencyModel::kTSO;
  CapturedTrace t = makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 5, 100),
       rec(TraceOp::kSwap, 1, 1, m, kX, 7, 110)});
  t.records[1].readValue = 5;  // swap read the store's value, wrote 7
  EXPECT_TRUE(verify::checkTrace(t).clean);

  t.records[1].readValue = 0xBAD;
  const verify::OracleResult res = verify::checkTrace(t);
  ASSERT_FALSE(res.clean);
  EXPECT_EQ(res.violations[0].kind,
            verify::OracleViolation::Kind::kBadReadValue);
}

// --- live differential -----------------------------------------------------

// Fault-free litmus-style runs across every model capture a trace the
// oracle accepts (the differential property's clean half, on the curated
// configs rather than the fuzz sweep's random ones).
TEST(LiveDifferential, FaultFreeCapturesAreConsistent) {
  for (ConsistencyModel m : {ConsistencyModel::kSC, ConsistencyModel::kTSO,
                             ConsistencyModel::kPSO, ConsistencyModel::kRMO}) {
    SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory, m);
    cfg.numNodes = 4;
    cfg.workload = WorkloadKind::kOltp;
    cfg.targetTransactions = 30;
    cfg.maxCycles = 5'000'000;
    cfg.trace.capture = true;
    System sys(cfg);
    const RunResult r = sys.run();
    ASSERT_TRUE(r.completed) << modelName(m);
    EXPECT_EQ(r.detections, 0u) << modelName(m);
    ASSERT_NE(r.trace, nullptr) << modelName(m);
    EXPECT_GT(r.trace->records.size(), 0u) << modelName(m);
    const verify::OracleResult o = verify::checkTrace(*r.trace);
    EXPECT_TRUE(o.clean)
        << modelName(m) << ": "
        << (o.violations.empty() ? "?" : o.violations[0].message);
  }
}

// The acceptance round-trip: inject memory corruption until the checkers
// detect it AND the corrupt value reaches a committed load, write the
// trace to disk, read it back, and require the oracle to flag the same
// execution — the `dvmc_oracle check escape.trace` workflow.
TEST(LiveDifferential, MemoryCorruptionRoundTripsThroughTraceFile) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 1'000'000;  // effectively unbounded
  cfg.maxCycles = 30'000'000;
  cfg.trace.capture = true;
  System sys(cfg);
  FaultInjector inj(sys, 0x0D15EA5E);

  sys.runUntil([&] { return sys.sim().now() >= 20'000; });
  ASSERT_EQ(sys.sink().count(), 0u);

  // Re-inject until the corruption is both detected and visible to the
  // oracle (a corrupted block must be read back by a committed load).
  bool flagged = false;
  verify::OracleResult offline;
  for (int round = 0; round < 80 && !flagged; ++round) {
    inj.inject(FaultType::kMemoryDataMultiBit);
    const Cycle until = sys.sim().now() + 25'000;
    sys.runUntil([&] { return sys.sim().now() >= until; });
    const RunResult r = sys.collectResult(false, sys.sim().now());
    ASSERT_NE(r.trace, nullptr);
    offline = verify::checkTrace(*r.trace);
    flagged = !offline.clean;
  }
  ASSERT_TRUE(flagged) << "corruption never reached a committed load";
  // Differential contract: the oracle only ever flags what the runtime
  // checkers (here: the ECC model feeding the sink) also caught.
  EXPECT_GT(sys.sink().count(), 0u)
      << "oracle violation without a checker detection (escape): "
      << offline.violations[0].message;
  EXPECT_EQ(offline.violations[0].kind,
            verify::OracleViolation::Kind::kBadReadValue);

  // File round-trip, as the nightly escape artifact would be replayed.
  const RunResult r = sys.collectResult(false, sys.sim().now());
  const std::string path = ::testing::TempDir() + "oracle_roundtrip.trace";
  std::string err;
  ASSERT_TRUE(verify::writeTraceFile(path, *r.trace, &err)) << err;
  CapturedTrace back;
  ASSERT_TRUE(verify::readTraceFile(path, &back, &err)) << err;
  EXPECT_EQ(back.serialize(), r.trace->serialize());
  const verify::OracleResult replay = verify::checkTrace(back);
  ASSERT_FALSE(replay.clean);
  EXPECT_EQ(replay.violations[0].kind,
            verify::OracleViolation::Kind::kBadReadValue);
  EXPECT_EQ(replay.violations[0].message, offline.violations[0].message);
  std::remove(path.c_str());
}

// Fuzz-config capture determinism: the same parameter yields a
// bit-identical serialized trace run to run (the repro contract behind
// replaying a nightly campaign escape locally).
TEST(LiveDifferential, SameConfigSameTraceBytes) {
  SystemConfig cfg = makeFuzzConfig(3);
  cfg.trace.capture = true;
  System a(cfg);
  const RunResult ra = a.run();
  System b(cfg);
  const RunResult rb = b.run();
  ASSERT_NE(ra.trace, nullptr);
  ASSERT_NE(rb.trace, nullptr);
  EXPECT_EQ(ra.trace->serialize(), rb.trace->serialize());
}

// Event-kernel determinism contract: the inline-task/pooled-message event
// kernel must produce the same execution — and therefore byte-identical
// captured dvmc-traces — for a fixed seed no matter how many workers fan
// the seeds out. This is the regression tripwire for any future scheduling
// change that reorders same-cycle events (the fig3/fig4 bit-identity check
// in the perf docs is the manual end-to-end variant of this assertion).
TEST(LiveDifferential, CapturedTraceBitIdenticalAcrossJobs) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 25;
  cfg.maxCycles = 5'000'000;
  cfg.trace.capture = true;

  cfg.jobs = 1;
  const MultiRunResult serial = runSeeds(cfg, 3);
  cfg.jobs = 4;
  const MultiRunResult parallel = runSeeds(cfg, 3);

  ASSERT_TRUE(serial.allCompleted);
  ASSERT_TRUE(parallel.allCompleted);
  ASSERT_EQ(serial.traces.size(), 3u);
  ASSERT_EQ(parallel.traces.size(), 3u);
  for (std::size_t s = 0; s < serial.traces.size(); ++s) {
    ASSERT_NE(serial.traces[s], nullptr) << "seed " << s;
    ASSERT_NE(parallel.traces[s], nullptr) << "seed " << s;
    EXPECT_EQ(serial.traces[s]->serialize(), parallel.traces[s]->serialize())
        << "seed " << s;
  }
}

TEST(TraceOptions, DeprecatedCaptureTraceAliasStillArmsCapture) {
  SystemConfig cfg = makeFuzzConfig(7);
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  cfg.captureTrace = true;          // the one-release compatibility alias
  cfg.traceCaptureLimit = 1 << 20;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  EXPECT_TRUE(cfg.effectiveTrace().capture);
  EXPECT_EQ(cfg.effectiveTrace().captureLimit, std::size_t{1} << 20);
  System sys(cfg);
  const RunResult r = sys.run();
  ASSERT_NE(r.trace, nullptr);
  EXPECT_FALSE(r.trace->records.empty());
}

TEST(TraceOptions, ValidateRejectsInconsistentCombinations) {
  SystemConfig::TraceOptions t;
  EXPECT_EQ(t.validate(), nullptr);  // defaults are consistent
  verify::MemoryTraceSink sink;
  t.sink = &sink;
  EXPECT_NE(t.validate(), nullptr);  // sink without capture
  t.capture = true;
  EXPECT_EQ(t.validate(), nullptr);
  t.chunkRecords = 0;
  EXPECT_NE(t.validate(), nullptr);
  t.chunkRecords = 4096;
  t.sink = nullptr;
  t.keepInMemory = false;
  EXPECT_NE(t.validate(), nullptr);  // capture that discards every record
  t.captureLimit = 0;
  t.keepInMemory = true;
  EXPECT_NE(t.validate(), nullptr);
}

// Spill-to-disk capture: the run streams settled chunks through a
// ChunkedTraceFileSink with keepInMemory off, so no in-memory capture
// exists, yet the file reassembles to the exact bytes of an in-memory
// capture of the same seed.
TEST(TraceOptions, SpillToDiskCaptureMatchesInMemoryCapture) {
  SystemConfig cfg = makeFuzzConfig(11);
  cfg.trace.capture = true;
  System mem(cfg);
  const RunResult rm = mem.run();
  ASSERT_NE(rm.trace, nullptr);

  const std::string path = ::testing::TempDir() + "spill.trace";
  {
    verify::ChunkedTraceFileSink sink(path);
    cfg.trace.sink = &sink;
    cfg.trace.keepInMemory = false;
    cfg.trace.chunkRecords = 256;
    System spill(cfg);
    const RunResult rs = spill.run();
    EXPECT_EQ(rs.trace, nullptr);  // nothing resident
    ASSERT_TRUE(sink.ok()) << sink.error();
  }
  CapturedTrace back;
  std::string err;
  ASSERT_TRUE(verify::readTraceFile(path, &back, &err)) << err;
  EXPECT_EQ(back.serialize(), rm.trace->serialize());
  std::remove(path.c_str());
}

// --- streaming oracle differential -----------------------------------------

// The streaming oracle's contract: when the settle window holds
// (windowExceeded() == false), verdict, violations, and statistics equal
// batch checkTrace() exactly — for clean traces AND must-flag negatives.
void expectStreamingMatchesBatch(const CapturedTrace& t,
                                 std::size_t chunkRecords,
                                 const verify::StreamingOracleOptions& o,
                                 const std::string& label) {
  SCOPED_TRACE(label + " chunk=" + std::to_string(chunkRecords) + " jobs=" +
               std::to_string(o.jobs));
  const verify::OracleResult batch =
      verify::checkTrace(t, {o.maxViolations});
  bool exceeded = false;
  std::size_t peak = 0;
  const verify::OracleResult stream =
      verify::checkTraceStreaming(t, o, chunkRecords, &exceeded, &peak);
  ASSERT_FALSE(exceeded);
  EXPECT_EQ(stream.clean, batch.clean);
  ASSERT_EQ(stream.violations.size(), batch.violations.size());
  for (std::size_t i = 0; i < batch.violations.size(); ++i) {
    const verify::OracleViolation& bv = batch.violations[i];
    const verify::OracleViolation& sv = stream.violations[i];
    EXPECT_EQ(sv.kind, bv.kind) << "violation " << i;
    EXPECT_EQ(sv.recordA, bv.recordA) << "violation " << i;
    EXPECT_EQ(sv.recordB, bv.recordB) << "violation " << i;
    EXPECT_EQ(sv.byteA, bv.byteA) << "violation " << i;
    EXPECT_EQ(sv.byteB, bv.byteB) << "violation " << i;
    EXPECT_EQ(sv.message, bv.message) << "violation " << i;
  }
  EXPECT_EQ(stream.stats.records, batch.stats.records);
  EXPECT_EQ(stream.stats.reads, batch.stats.reads);
  EXPECT_EQ(stream.stats.writes, batch.stats.writes);
  EXPECT_EQ(stream.stats.membars, batch.stats.membars);
  EXPECT_EQ(stream.stats.virtualNodes, batch.stats.virtualNodes);
  EXPECT_EQ(stream.stats.edges, batch.stats.edges);
  EXPECT_EQ(stream.stats.rfEdges, batch.stats.rfEdges);
  EXPECT_EQ(stream.stats.wsEdges, batch.stats.wsEdges);
  EXPECT_EQ(stream.stats.frEdges, batch.stats.frEdges);
  EXPECT_EQ(stream.stats.forwardedReads, batch.stats.forwardedReads);
  EXPECT_EQ(stream.stats.initReads, batch.stats.initReads);
  EXPECT_EQ(stream.stats.ambiguousReads, batch.stats.ambiguousReads);
}

std::vector<std::pair<std::string, CapturedTrace>> conformanceSuite() {
  std::vector<std::pair<std::string, CapturedTrace>> suite;
  for (ConsistencyModel m : {ConsistencyModel::kSC, ConsistencyModel::kTSO,
                             ConsistencyModel::kPSO, ConsistencyModel::kRMO}) {
    suite.emplace_back(std::string("SB/") + modelName(m), storeBuffering(m));
    suite.emplace_back(std::string("CoRR/") + modelName(m), coRR(m));
    suite.emplace_back(std::string("MP/") + modelName(m),
                       messagePassing(m, false));
    suite.emplace_back(std::string("MP+stbar/") + modelName(m),
                       messagePassing(m, true));
  }
  {
    const ConsistencyModel m = ConsistencyModel::kTSO;
    suite.emplace_back(
        "SB+membar/TSO",
        makeTrace(m, 2,
                  {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
                   membarRec(0, 2, m, membar::kStoreLoad, 110),
                   rec(TraceOp::kLoad, 0, 3, m, kY, 0, 120),
                   rec(TraceOp::kStore, 1, 1, m, kY, 1, 101),
                   membarRec(1, 2, m, membar::kStoreLoad, 111),
                   rec(TraceOp::kLoad, 1, 3, m, kX, 0, 121)}));
  }
  {
    const ConsistencyModel m = ConsistencyModel::kSC;
    suite.emplace_back(
        "IRIW/SC",
        makeTrace(m, 4,
                  {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
                   rec(TraceOp::kStore, 1, 1, m, kY, 1, 101),
                   rec(TraceOp::kLoad, 2, 1, m, kX, 1, 110),
                   rec(TraceOp::kLoad, 2, 2, m, kY, 0, 111),
                   rec(TraceOp::kLoad, 3, 1, m, kY, 1, 110),
                   rec(TraceOp::kLoad, 3, 2, m, kX, 0, 111)}));
  }
  {
    const ConsistencyModel m = ConsistencyModel::kTSO;
    suite.emplace_back(
        "NeverWritten/TSO",
        makeTrace(m, 2,
                  {rec(TraceOp::kStore, 0, 1, m, kX, 1, 100),
                   rec(TraceOp::kLoad, 1, 1, m, kX, 0xDEAD, 110)}));
    CapturedTrace atomicGood = makeTrace(
        m, 2,
        {rec(TraceOp::kStore, 0, 1, m, kX, 5, 100),
         rec(TraceOp::kSwap, 1, 1, m, kX, 7, 110)});
    atomicGood.records[1].readValue = 5;
    suite.emplace_back("AtomicRf/TSO", atomicGood);
    CapturedTrace atomicBad = atomicGood;
    atomicBad.records[1].readValue = 0xBAD;
    suite.emplace_back("AtomicBadRead/TSO", atomicBad);
    suite.emplace_back(
        "NonMonotoneSeq/TSO",
        makeTrace(m, 1,
                  {rec(TraceOp::kLoad, 0, 5, m, kX, 0, 5),
                   rec(TraceOp::kLoad, 0, 5, m, kX, 0, 9)}));
    CapturedTrace trunc = makeTrace(
        m, 1, {rec(TraceOp::kLoad, 0, 1, m, kX, 0, 5)});
    trunc.truncated = true;
    suite.emplace_back("Truncated/TSO", trunc);
  }
  return suite;
}

TEST(StreamingDifferential, ConformanceSuiteMatchesBatch) {
  for (const auto& [name, t] : conformanceSuite()) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{2},
                              std::size_t{4096}}) {
      expectStreamingMatchesBatch(t, chunk, {}, name);
    }
  }
}

TEST(StreamingDifferential, LiveCapturesMatchBatchAcrossJobs) {
  for (ConsistencyModel m : {ConsistencyModel::kTSO, ConsistencyModel::kRMO}) {
    SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory, m);
    cfg.numNodes = 4;
    cfg.workload = WorkloadKind::kOltp;
    cfg.targetTransactions = 30;
    cfg.maxCycles = 5'000'000;
    cfg.trace.capture = true;
    System sys(cfg);
    const RunResult r = sys.run();
    ASSERT_TRUE(r.completed) << modelName(m);
    ASSERT_NE(r.trace, nullptr) << modelName(m);
    for (int jobs : {1, 4}) {
      verify::StreamingOracleOptions o;
      o.jobs = jobs;
      o.shardMinBatch = 1;  // force the sharded path even on small batches
      expectStreamingMatchesBatch(*r.trace, 512, o,
                                  std::string("live/") + modelName(m));
    }
  }
}

TEST(StreamingDifferential, CorruptedCaptureMatchesBatch) {
  SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                            ConsistencyModel::kTSO);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 1'000'000;
  cfg.maxCycles = 30'000'000;
  cfg.trace.capture = true;
  System sys(cfg);
  FaultInjector inj(sys, 0x0D15EA5E);
  sys.runUntil([&] { return sys.sim().now() >= 20'000; });
  bool flagged = false;
  for (int round = 0; round < 80 && !flagged; ++round) {
    inj.inject(FaultType::kMemoryDataMultiBit);
    const Cycle until = sys.sim().now() + 25'000;
    sys.runUntil([&] { return sys.sim().now() >= until; });
    const RunResult r = sys.collectResult(false, sys.sim().now());
    ASSERT_NE(r.trace, nullptr);
    flagged = !verify::checkTrace(*r.trace).clean;
    if (flagged) {
      expectStreamingMatchesBatch(*r.trace, 1024, {}, "corrupted");
    }
  }
  ASSERT_TRUE(flagged) << "corruption never reached a committed load";
}

// Bounded residency: on a long trace whose perform order tracks commit
// order, the live window stays O(horizon) — the whole point of the
// streaming path — while the verdict still matches batch.
TEST(StreamingDifferential, ResidencyIsBoundedByTheWindow) {
  const ConsistencyModel m = ConsistencyModel::kTSO;
  const std::uint32_t kCores = 4;
  std::vector<TraceRecord> recs;
  std::vector<SeqNum> seq(kCores, 0);
  std::vector<std::uint64_t> last(kCores, 0);
  const std::size_t kOps = 40'000;
  recs.reserve(kOps);
  for (std::size_t i = 0; i < kOps; ++i) {
    const NodeId core = NodeId(i % kCores);
    const Addr addr = kX + 0x40 * Addr(core);  // core-private word
    const Cycle cyc = Cycle(10 + i);
    if ((i / kCores) % 2 == 0) {
      const std::uint64_t v = 0x1000 + i;  // globally unique store values
      recs.push_back(rec(TraceOp::kStore, core, ++seq[core], m, addr, v, cyc));
      last[core] = v;
    } else {
      recs.push_back(rec(TraceOp::kLoad, core, ++seq[core], m, addr,
                         last[core], cyc));
    }
  }
  CapturedTrace t = makeTrace(m, kCores, std::move(recs));

  verify::StreamingOracleOptions o;
  o.settleHorizon = 256;
  o.maxResidentEvents = 8192;
  bool exceeded = true;
  std::size_t peak = 0;
  const verify::OracleResult stream =
      verify::checkTraceStreaming(t, o, 512, &exceeded, &peak);
  ASSERT_FALSE(exceeded);
  EXPECT_TRUE(stream.clean);
  // Far below both the cap and the trace length: memory is governed by
  // the horizon, not the run length.
  EXPECT_LE(peak, std::size_t{4096});
  EXPECT_LT(peak, t.records.size() / 4);
  expectStreamingMatchesBatch(t, 512, o, "bounded");
}

// A record performing far behind the frontier breaks the settle-horizon
// assumption: the stream must say so (windowExceeded) instead of
// guessing, and the batch fallback still yields the reference verdict.
TEST(StreamingDifferential, LaggingRecordTripsTheWindowDetector) {
  const ConsistencyModel m = ConsistencyModel::kRMO;
  CapturedTrace t = makeTrace(
      m, 2,
      {rec(TraceOp::kStore, 0, 1, m, kX, 1, 1'000'000),
       rec(TraceOp::kLoad, 1, 1, m, kY, 0, 10)});  // 999990 cycles behind
  verify::StreamingOracleOptions o;
  o.settleHorizon = 1024;
  bool exceeded = false;
  (void)verify::checkTraceStreaming(t, o, 1, &exceeded, nullptr);
  EXPECT_TRUE(exceeded);
  EXPECT_TRUE(verify::checkTrace(t).clean);  // the fallback path
}

// A write of a value that an earlier read already resolved against would
// have changed the batch candidate count (unique -> ambiguous): the
// watched-value detector refuses to stream that trace.
TEST(StreamingDifferential, LateSameValueWriteTripsTheWatchDetector) {
  const ConsistencyModel m = ConsistencyModel::kRMO;
  CapturedTrace t = makeTrace(
      m, 3,
      {rec(TraceOp::kStore, 0, 1, m, kX, 5, 20),
       rec(TraceOp::kLoad, 1, 1, m, kX, 5, 30),
       rec(TraceOp::kLoad, 1, 2, m, kY, 0, 60),  // advances the frontier
       rec(TraceOp::kStore, 2, 1, m, kX, 5, 100)});
  verify::StreamingOracleOptions o;
  o.settleHorizon = 16;
  bool exceeded = false;
  (void)verify::checkTraceStreaming(t, o, 1, &exceeded, nullptr);
  EXPECT_TRUE(exceeded);
  // Batch sees two same-value writers: ambiguous, but clean.
  const verify::OracleResult batch = verify::checkTrace(t);
  EXPECT_TRUE(batch.clean);
  EXPECT_EQ(batch.stats.ambiguousReads, 1u);
}

// --- chunked trace container (dvmc-trace v2) --------------------------------

TEST(TraceSinkV2, ChunkedFileRoundTripsThroughBothReaders) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kPSO, 2,
      {rec(TraceOp::kStore, 0, 1, ConsistencyModel::kPSO, kX, 7, 10),
       membarRec(0, 2, ConsistencyModel::kPSO, membar::kStbar, 12),
       rec(TraceOp::kSwap, 1, 1, ConsistencyModel::kTSO, kY, 9, 20),
       rec(TraceOp::kLoad, 1, 2, ConsistencyModel::kTSO, kY, 9, 25),
       rec(TraceOp::kStore, 0, 3, ConsistencyModel::kPSO, kX, 8, 30)});
  t.records[2].readValue = 0;
  const std::string path = ::testing::TempDir() + "chunked.trace";
  {
    verify::ChunkedTraceFileSink sink(path);
    verify::streamCapturedTrace(t, sink, 2);  // odd tail chunk included
    ASSERT_TRUE(sink.ok()) << sink.error();
    EXPECT_EQ(sink.recordsWritten(), t.records.size());
  }
  CapturedTrace back;
  std::string err;
  ASSERT_TRUE(verify::readTraceFile(path, &back, &err)) << err;
  EXPECT_EQ(back.serialize(), t.serialize());

  verify::MemoryTraceSink mem;
  ASSERT_TRUE(verify::streamTraceFile(path, mem, &err)) << err;
  ASSERT_NE(mem.trace(), nullptr);
  EXPECT_EQ(mem.trace()->serialize(), t.serialize());
  std::remove(path.c_str());
}

TEST(TraceSinkV2, RecorderStreamingModeMatchesInMemoryCapture) {
  // Drive a recorder by hand through the commit/patch lifecycle: the
  // chunk stream reassembles to the exact in-memory capture, including a
  // store that performs out of chunk order and one that never performs.
  verify::MemoryTraceSink sink;
  verify::TraceRecorder recorder(2, ConsistencyModel::kTSO, 1, 99, 1 << 20,
                                 &sink, /*chunkRecords=*/2,
                                 /*keepInMemory=*/true);
  auto commitStore = [&](NodeId n, SeqNum s, Addr a, std::uint64_t v) {
    TraceRecord r;
    r.op = TraceOp::kStore;
    r.node = std::uint8_t(n);
    r.seq = s;
    r.model = std::uint8_t(ConsistencyModel::kTSO);
    r.addr = a;
    r.value = v;
    recorder.onCommit(r);  // buffered: not yet performed
  };
  auto commitLoad = [&](NodeId n, SeqNum s, Addr a, std::uint64_t v,
                        Cycle c) {
    recorder.onCommit(rec(TraceOp::kLoad, n, s, ConsistencyModel::kTSO, a, v,
                          c));
  };
  commitStore(0, 1, kX, 1);
  commitLoad(1, 1, kX, 0, 5);
  commitStore(0, 2, kX, 2);
  commitLoad(1, 2, kY, 0, 9);
  recorder.storeSuperseded(0, 1, 11);  // coalesced into seq 2
  recorder.storePerformed(0, 2, 14);
  commitStore(1, 3, kY, 3);  // still pending at end of run
  recorder.finish();
  ASSERT_NE(sink.trace(), nullptr);
  ASSERT_NE(recorder.trace(), nullptr);
  EXPECT_EQ(sink.trace()->serialize(), recorder.trace()->serialize());
  EXPECT_FALSE(sink.trace()->truncated);
  // The pending tail store keeps kNotPerformed in both captures.
  EXPECT_FALSE(sink.trace()->records.back().performed());
}

// I/O errors are sticky, not fatal: a sink pointed at an unwritable
// directory keeps accepting the stream (the run must not die because its
// spill target vanished) but reports the failure through ok()/error().
TEST(TraceSinkV2, ChunkedSinkSurfacesUnwritableTargets) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kTSO, 1,
      {rec(TraceOp::kStore, 0, 1, ConsistencyModel::kTSO, kX, 1, 10)});
  verify::ChunkedTraceFileSink sink("/nonexistent-dvmc-dir/x/spill.trace");
  verify::streamCapturedTrace(t, sink, 4);
  EXPECT_FALSE(sink.ok());
  EXPECT_NE(sink.error().find("/nonexistent-dvmc-dir/x/spill.trace"),
            std::string::npos)
      << sink.error();
  EXPECT_EQ(sink.recordsWritten(), 0u);
}

// A tee must keep feeding its healthy child when the other child's I/O
// fails — the streaming oracle still judges the run even when the spill
// file cannot be written.
TEST(TraceSinkV2, TeeKeepsTheHealthyChildFedWhenOneChildFails) {
  CapturedTrace t = makeTrace(
      ConsistencyModel::kTSO, 2,
      {rec(TraceOp::kStore, 0, 1, ConsistencyModel::kTSO, kX, 7, 10),
       rec(TraceOp::kLoad, 1, 1, ConsistencyModel::kTSO, kX, 7, 20)});
  verify::ChunkedTraceFileSink broken("/nonexistent-dvmc-dir/x/tee.trace");
  verify::MemoryTraceSink healthy;
  verify::TeeTraceSink tee(&broken, &healthy);
  verify::streamCapturedTrace(t, tee, 1);
  EXPECT_FALSE(broken.ok());
  ASSERT_NE(healthy.trace(), nullptr);
  EXPECT_EQ(healthy.trace()->serialize(), t.serialize());
}

}  // namespace
}  // namespace dvmc
