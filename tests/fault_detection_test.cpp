// The Section 6.1 experiment as a test: inject faults of a given type into
// a running benchmark and require DVMC (or ECC) to detect the error within
// the SafetyNet recovery window, with a valid checkpoint still available.
//
// Methodology note: a single injection can be architecturally masked (a
// corrupted line that is evicted before reuse, a duplicated message the
// protocol absorbs). Masked faults are not errors — the end-to-end
// argument says nothing incorrect happened. Like the paper's campaign,
// which ran until the injected error was detected, the harness re-injects
// (with fresh random targets) until an injection manifests, then bounds
// the detection latency from the most recent injection.
#include <gtest/gtest.h>

#include <string>

#include "faults/injector.hpp"
#include "system/system.hpp"

namespace dvmc {
namespace {

struct FaultCase {
  Protocol protocol;
  ConsistencyModel model;
  FaultType fault;
};

std::string caseName(const ::testing::TestParamInfo<FaultCase>& info) {
  std::string n = std::string(protocolName(info.param.protocol)) + "_" +
                  modelName(info.param.model) + "_" +
                  faultTypeName(info.param.fault);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class FaultDetection : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultDetection, DetectedWithinRecoveryWindow) {
  const FaultCase& fc = GetParam();
  ASSERT_TRUE(faultApplicable(fc.fault, fc.model, fc.protocol));

  SystemConfig cfg = SystemConfig::withDvmc(fc.protocol, fc.model);
  cfg.numNodes = 4;
  cfg.workload = WorkloadKind::kOltp;
  cfg.targetTransactions = 1'000'000;  // effectively unbounded
  cfg.maxCycles = 20'000'000;
  cfg.dvmc.membarInjectionPeriod = 20'000;  // tighter watchdog for tests
  cfg.ber.interval = 20'000;
  cfg.ber.maxCheckpoints = 10;  // window = 200k cycles
  System sys(cfg);
  FaultInjector inj(sys, 0xFA017 + static_cast<int>(fc.fault));

  // Warm up error-free.
  sys.runUntil([&] { return sys.sim().now() >= 30'000; });
  ASSERT_EQ(sys.sink().count(), 0u)
      << "fault-free phase dirty: " << sys.sink().first().what;

  // Flush counters double as the detection signal for speculative-path
  // faults, which the verification stage repairs in place (§4.1).
  auto flushes = [&] {
    std::uint64_t total = 0;
    for (NodeId n = 0; n < sys.numNodes(); ++n) {
      total += sys.core(n).stats().get("cpu.uoFlushes");
      total += sys.core(n).stats().get("cpu.rmoReplayFlushes");
    }
    return total;
  };
  const bool lsqFault = fc.fault == FaultType::kLsqWrongForward;
  const std::uint64_t flushesBefore = flushes();

  auto detected = [&] {
    return sys.sink().any() || (lsqFault && flushes() > flushesBefore);
  };

  // Inject; if the fault is masked (no manifestation within a grace
  // period), re-inject at a fresh random location — mirroring a campaign
  // that draws injection sites until the error manifests.
  Cycle lastInjection = 0;
  int injections = 0;
  for (int round = 0; round < 60 && !detected(); ++round) {
    if (inj.inject(fc.fault)) {
      lastInjection = sys.sim().now();
      ++injections;
    }
    const Cycle until = sys.sim().now() + 25'000;
    sys.runUntil([&] { return detected() || sys.sim().now() >= until; });
  }
  ASSERT_GT(injections, 0) << "fault never found a target";
  ASSERT_TRUE(detected()) << "undetected after " << injections
                          << " injections of " << faultTypeName(fc.fault);

  const bool bySink = sys.sink().any();
  const Cycle detectedAt = bySink ? sys.sink().first().cycle : sys.sim().now();
  if (detectedAt > lastInjection) {
    EXPECT_LE(detectedAt - lastInjection, 200'000u)
        << "detection latency exceeds the recovery window";
  }

  // A valid checkpoint predating the (manifesting) injection must still
  // exist, and recovery from it must succeed.
  if (bySink) {
    EXPECT_LT(sys.ber()->oldestCheckpoint(), lastInjection)
        << "recovery window expired before detection";
    EXPECT_TRUE(sys.recover(lastInjection));
  }
}

std::vector<FaultCase> allCases() {
  std::vector<FaultCase> v;
  for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
    for (ConsistencyModel m :
         {ConsistencyModel::kSC, ConsistencyModel::kTSO,
          ConsistencyModel::kPSO, ConsistencyModel::kRMO}) {
      for (FaultType f : allFaultTypes()) {
        if (!faultApplicable(f, m, p)) continue;
        v.push_back({p, m, f});
      }
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Campaign, FaultDetection,
                         ::testing::ValuesIn(allCases()), caseName);

}  // namespace
}  // namespace dvmc
