// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation
// (Section 6). Output convention: a header describing the experiment, then
// one whitespace-aligned row per series point with mean and stddev over
// DVMC_BENCH_SEEDS perturbation runs (paper: ten runs; default here: 3).
// Environment knobs: DVMC_BENCH_SEEDS, DVMC_BENCH_TXNS.
//
// Machine-readable output: every bench accepts `--json <path>` (parsed by
// parseStandardFlags) and writes a "dvmc-bench" document — one row per
// measured configuration with its throughput (events/sec) and host wall
// time — which the CI perf gate diffs against a checked-in baseline. See
// docs/performance.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/thread_pool.hpp"
#include "common/version.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "obs/spans.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"

namespace dvmc::bench {

// --- dvmc-bench JSON output (--json <path>) --------------------------------

inline constexpr int kBenchSchemaVersion = 1;
inline constexpr const char* kBenchSchemaName = "dvmc-bench";

/// One measured row: a configuration (or microbenchmark) name, its event
/// throughput, and the host wall time spent measuring it. Rows from
/// binaries built with the allocation hook (see DVMC_BENCH_ALLOC_HOOK)
/// additionally carry counted heap allocations per executed event;
/// negative means "not measured" and the key is omitted from the JSON.
struct BenchJsonRow {
  std::string name;
  double eventsPerSec = 0;
  double wallMs = 0;
  double allocsPerEvent = -1;
};

inline std::string& benchJsonPath() {
  static std::string path;
  return path;
}

inline std::vector<BenchJsonRow>& benchJsonRows() {
  static std::vector<BenchJsonRow> rows;
  return rows;
}

/// Records one result row for the --json report. Called from the bench
/// main thread (runCyclesPerSeed records automatically; google-benchmark
/// mains record from their reporter). No-op cost when --json is off is a
/// branch — callers may record unconditionally.
inline void recordBenchResult(std::string name, double eventsPerSec,
                              double wallMs, double allocsPerEvent = -1) {
  if (benchJsonPath().empty()) return;
  benchJsonRows().push_back(
      BenchJsonRow{std::move(name), eventsPerSec, wallMs, allocsPerEvent});
}

/// Writes the dvmc-bench document if --json was given. Call once at the
/// end of main, after every configuration has been measured.
inline void writeBenchJson(const char* benchId) {
  if (benchJsonPath().empty()) return;
  Json root = Json::object();
  root.set("schema", Json::str(kBenchSchemaName))
      .set("version", Json::num(kBenchSchemaVersion))
      .set("generator", Json::str(versionString()))
      .set("bench", Json::str(benchId));
  Json cfg = Json::object();
  cfg.set("seeds", Json::num(benchSeedCount()))
      .set("transactions", Json::num(benchTransactionTarget()))
      .set("jobs", Json::num(defaultJobs()));
  root.set("config", std::move(cfg));
  Json results = Json::array();
  for (const BenchJsonRow& r : benchJsonRows()) {
    Json row = Json::object();
    row.set("name", Json::str(r.name))
        .set("eventsPerSec", Json::num(r.eventsPerSec))
        .set("wallMs", Json::num(r.wallMs));
    if (r.allocsPerEvent >= 0) {
      row.set("allocsPerEvent", Json::num(r.allocsPerEvent));
    }
    results.push(std::move(row));
  }
  root.set("results", std::move(results));
  std::ofstream out(benchJsonPath(), std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write --json file '%s'\n",
                 benchJsonPath().c_str());
    std::exit(2);
  }
  out << root.dump(2) << "\n";
  std::printf("\n[json] wrote %zu result rows to %s\n", benchJsonRows().size(),
              benchJsonPath().c_str());
}

/// Registers the bench flag group (--json) on a CliParser: the dvmc-bench
/// machine-readable output the CI perf gate diffs against its baseline.
inline void addBenchFlags(CliParser& cli) {
  cli.path("--json", &benchJsonPath(), "FILE",
           "write a dvmc-bench JSON document with one row per measured "
           "configuration");
}

inline std::uint64_t targetFor(WorkloadKind wl) {
  // Barnes runs to completion: the target counts per-thread phases.
  if (wl == WorkloadKind::kBarnes) return 4;
  return benchTransactionTarget();
}

inline const std::vector<WorkloadKind>& paperWorkloads() {
  static const std::vector<WorkloadKind> kAll = {
      WorkloadKind::kApache, WorkloadKind::kOltp, WorkloadKind::kJbb,
      WorkloadKind::kSlash, WorkloadKind::kBarnes};
  return kAll;
}

inline const std::vector<ConsistencyModel>& allModels() {
  static const std::vector<ConsistencyModel> kAll = {
      ConsistencyModel::kSC, ConsistencyModel::kTSO, ConsistencyModel::kPSO,
      ConsistencyModel::kRMO};
  return kAll;
}

inline SystemConfig benchConfig(Protocol p, ConsistencyModel m,
                                WorkloadKind wl, bool dvmcOn, bool berOn) {
  SystemConfig cfg = dvmcOn ? SystemConfig::withDvmc(p, m)
                            : SystemConfig::unprotected(p, m);
  cfg.berEnabled = berOn;
  cfg.numNodes = 8;
  cfg.workload = wl;
  cfg.targetTransactions = targetFor(wl);
  cfg.maxCycles = 200'000'000;
  // --trace=FILE arms a process-global tracer; runSeeds/runCyclesPerSeed
  // hand it to the first seed's run only. The forensics recorder is
  // mutex-guarded, so every seed shares it.
  cfg.tracer = obs::activeTracer();
  cfg.forensics = obs::activeForensics();
  cfg.sampleEvery = obs::options().sampleEvery;
  cfg.sampleCapacity = obs::options().sampleCapacity;
  return cfg;
}

/// Standard flag handling for every bench main: one strict CliParser
/// carrying the runner (--jobs), bench (--json), and observability flag
/// groups, with auto --help and unknown-flag exit(2). Pass
/// `gbenchPassthrough` for google-benchmark binaries so their
/// --benchmark_* flags survive for benchmark::Initialize.
inline int parseStandardFlags(int argc, char** argv, const char* name,
                              const char* what,
                              bool gbenchPassthrough = false) {
  CliParser cli(name, what);
  addRunnerFlags(cli);
  addBenchFlags(cli);
  obs::addObsFlags(cli);
  if (gbenchPassthrough) cli.passthroughPrefix("--benchmark_");
  return cli.parse(argc, argv);
}

/// Short config label for dvmc-bench rows, e.g. "directory/TSO/apache/dvmc+ber".
inline std::string configLabel(const SystemConfig& cfg) {
  std::string s = protocolName(cfg.protocol);
  s += '/';
  s += modelName(cfg.model);
  s += '/';
  s += workloadName(cfg.workload);
  s += cfg.dvmc.anyChecker() ? "/dvmc" : "/unprot";
  if (cfg.berEnabled) s += "+ber";
  return s;
}

inline void header(const char* id, const char* what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("  nodes=8, seeds=%d, transactions=%llu (barnes: 4 phases), "
              "jobs=%d\n",
              benchSeedCount(),
              static_cast<unsigned long long>(benchTransactionTarget()),
              defaultJobs());
  std::printf("==========================================================\n");
}

/// Prints one normalized-runtime cell: mean (+/- std), both normalized.
inline std::string normCell(const RunningStat& s, double baseMean) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%5.2f +-%4.2f", s.mean() / baseMean,
                s.stddev() / baseMean);
  return buf;
}

/// Per-seed runtimes for paired comparisons: runtime noise between seeds is
/// much larger than between configurations, so ratios are taken seed by
/// seed (the paper's perturbation pairs) before aggregating. Seeds run in
/// parallel (resolveJobs, --jobs); results stay in seed order.
inline std::vector<double> runCyclesPerSeed(SystemConfig cfg, int seeds,
                                            std::uint64_t* detections = nullptr) {
  obs::ScopedSpan span("bench-config");
  const auto wallStart = std::chrono::steady_clock::now();
  std::vector<RunResult> results(static_cast<std::size_t>(seeds));
  parallelFor(static_cast<std::size_t>(seeds),
              static_cast<unsigned>(resolveJobs(cfg)), [&](std::size_t s) {
                SystemConfig c = cfg;
                c.seed = 1 + s;
                if (s != 0) c.tracer = nullptr;  // tracer is single-threaded
                results[s] = runOnce(c);
              });
  std::vector<double> out;
  out.reserve(results.size());
  std::uint64_t simCycles = 0;
  for (const RunResult& r : results) {
    out.push_back(static_cast<double>(r.cycles));
    simCycles += r.cycles;
    if (detections != nullptr) *detections += r.detections;
  }
  if (!benchJsonPath().empty()) {
    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wallStart)
            .count();
    // "events" for a full-system sweep = simulated cycles across all
    // seeds; eventsPerSec is thus host simulation throughput.
    const double eps =
        wallMs > 0 ? static_cast<double>(simCycles) * 1e3 / wallMs : 0;
    recordBenchResult(configLabel(cfg), eps, wallMs);
  }
  return out;
}

inline RunningStat pairedRatio(const std::vector<double>& variant,
                               const std::vector<double>& base) {
  RunningStat s;
  for (std::size_t i = 0; i < variant.size() && i < base.size(); ++i) {
    if (base[i] > 0) s.addTracked(variant[i] / base[i]);
  }
  return s;
}

inline std::string ratioCell(const RunningStat& s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%5.2f +-%4.2f", s.mean(), s.stddev());
  return buf;
}

// --- allocation-counting operator-new hook (DVMC_BENCH_ALLOC_HOOK) ---------
//
// bench_micro_sim proves the event kernel's zero-allocation claim by
// *counting*, not assuming: the binary defines DVMC_BENCH_ALLOC_HOOK before
// including this header, which replaces the global allocation functions
// with counting wrappers. Each bench binary is a single translation unit,
// so the replacement is well-defined and program-wide (it counts the
// harness too — which is the point: resetAllocCount() right before the
// measured region, and any stray heap traffic shows up in the quotient).
// Counting is a relaxed atomic increment, cheap enough to leave always-on
// in hooked binaries.

inline std::atomic<std::uint64_t>& allocHookCounter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Heap allocations observed since the last resetAllocCount(). Always 0 in
/// binaries built without DVMC_BENCH_ALLOC_HOOK.
inline std::uint64_t allocCount() {
  return allocHookCounter().load(std::memory_order_relaxed);
}

inline void resetAllocCount() {
  allocHookCounter().store(0, std::memory_order_relaxed);
}

}  // namespace dvmc::bench

#if defined(DVMC_BENCH_ALLOC_HOOK)

void* operator new(std::size_t size) {
  dvmc::bench::allocHookCounter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  dvmc::bench::allocHookCounter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}

void* operator new(std::size_t size, std::align_val_t align) {
  dvmc::bench::allocHookCounter().fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded != 0 ? rounded : a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // DVMC_BENCH_ALLOC_HOOK
