// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation
// (Section 6). Output convention: a header describing the experiment, then
// one whitespace-aligned row per series point with mean and stddev over
// DVMC_BENCH_SEEDS perturbation runs (paper: ten runs; default here: 3).
// Environment knobs: DVMC_BENCH_SEEDS, DVMC_BENCH_TXNS.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/run_report.hpp"
#include "system/runner.hpp"
#include "system/system.hpp"

namespace dvmc::bench {

inline std::uint64_t targetFor(WorkloadKind wl) {
  // Barnes runs to completion: the target counts per-thread phases.
  if (wl == WorkloadKind::kBarnes) return 4;
  return benchTransactionTarget();
}

inline const std::vector<WorkloadKind>& paperWorkloads() {
  static const std::vector<WorkloadKind> kAll = {
      WorkloadKind::kApache, WorkloadKind::kOltp, WorkloadKind::kJbb,
      WorkloadKind::kSlash, WorkloadKind::kBarnes};
  return kAll;
}

inline const std::vector<ConsistencyModel>& allModels() {
  static const std::vector<ConsistencyModel> kAll = {
      ConsistencyModel::kSC, ConsistencyModel::kTSO, ConsistencyModel::kPSO,
      ConsistencyModel::kRMO};
  return kAll;
}

inline SystemConfig benchConfig(Protocol p, ConsistencyModel m,
                                WorkloadKind wl, bool dvmcOn, bool berOn) {
  SystemConfig cfg = dvmcOn ? SystemConfig::withDvmc(p, m)
                            : SystemConfig::unprotected(p, m);
  cfg.berEnabled = berOn;
  cfg.numNodes = 8;
  cfg.workload = wl;
  cfg.targetTransactions = targetFor(wl);
  cfg.maxCycles = 200'000'000;
  // --trace=FILE arms a process-global tracer; runSeeds/runCyclesPerSeed
  // hand it to the first seed's run only. The forensics recorder is
  // mutex-guarded, so every seed shares it.
  cfg.tracer = obs::activeTracer();
  cfg.forensics = obs::activeForensics();
  cfg.sampleEvery = obs::options().sampleEvery;
  cfg.sampleCapacity = obs::options().sampleCapacity;
  return cfg;
}

/// Standard flag handling for every bench/example main: strips --jobs and
/// the observability flags (--trace / --report-json / --trace-capacity).
inline int parseStandardFlags(int argc, char** argv) {
  argc = parseJobsFlag(argc, argv);
  return obs::parseObsFlags(argc, argv);
}

inline void header(const char* id, const char* what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("  nodes=8, seeds=%d, transactions=%llu (barnes: 4 phases), "
              "jobs=%d\n",
              benchSeedCount(),
              static_cast<unsigned long long>(benchTransactionTarget()),
              defaultJobs());
  std::printf("==========================================================\n");
}

/// Prints one normalized-runtime cell: mean (+/- std), both normalized.
inline std::string normCell(const RunningStat& s, double baseMean) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%5.2f +-%4.2f", s.mean() / baseMean,
                s.stddev() / baseMean);
  return buf;
}

/// Per-seed runtimes for paired comparisons: runtime noise between seeds is
/// much larger than between configurations, so ratios are taken seed by
/// seed (the paper's perturbation pairs) before aggregating. Seeds run in
/// parallel (resolveJobs, --jobs); results stay in seed order.
inline std::vector<double> runCyclesPerSeed(SystemConfig cfg, int seeds,
                                            std::uint64_t* detections = nullptr) {
  std::vector<RunResult> results(static_cast<std::size_t>(seeds));
  parallelFor(static_cast<std::size_t>(seeds),
              static_cast<unsigned>(resolveJobs(cfg)), [&](std::size_t s) {
                SystemConfig c = cfg;
                c.seed = 1 + s;
                if (s != 0) c.tracer = nullptr;  // tracer is single-threaded
                results[s] = runOnce(c);
              });
  std::vector<double> out;
  out.reserve(results.size());
  for (const RunResult& r : results) {
    out.push_back(static_cast<double>(r.cycles));
    if (detections != nullptr) *detections += r.detections;
  }
  return out;
}

inline RunningStat pairedRatio(const std::vector<double>& variant,
                               const std::vector<double>& base) {
  RunningStat s;
  for (std::size_t i = 0; i < variant.size() && i < base.size(); ++i) {
    if (base[i] > 0) s.addTracked(variant[i] / base[i]);
  }
  return s;
}

inline std::string ratioCell(const RunningStat& s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%5.2f +-%4.2f", s.mean(), s.stddev());
  return buf;
}

}  // namespace dvmc::bench
