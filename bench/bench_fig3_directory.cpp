// Figure 3: runtime of the directory system, normalized to the unprotected
// SC baseline, for SC/TSO/PSO/RMO — unprotected ("Base") and with full
// DVMC + SafetyNet ("DVMC") — across the five workloads.
//
// Expected shape (paper): TSO Base beats SC Base on most workloads thanks
// to the write buffer; PSO/RMO are close to TSO (sometimes worse, membar
// costs); DVMC slows each model by a few percent, worst under SC; no
// slowdown exceeds ~11%; slash is noisy.
#include "bench_common.hpp"

namespace dvmc {
namespace {

int run(Protocol protocol, const char* id, const char* title) {
  bench::header(id, title);
  const int seeds = benchSeedCount();

  std::printf("%-8s | %-6s", "workload", "cfg");
  for (ConsistencyModel m : bench::allModels()) {
    std::printf(" | %-12s", modelName(m));
  }
  std::printf("\n");

  for (WorkloadKind wl : bench::paperWorkloads()) {
    // Normalization base: unprotected SC, same workload, paired per seed.
    const std::vector<double> base = bench::runCyclesPerSeed(
        bench::benchConfig(protocol, ConsistencyModel::kSC, wl,
                           /*dvmcOn=*/false, /*berOn=*/false),
        seeds);

    for (bool dvmcOn : {false, true}) {
      std::printf("%-8s | %-6s", workloadName(wl), dvmcOn ? "DVMC" : "Base");
      for (ConsistencyModel m : bench::allModels()) {
        std::uint64_t detections = 0;
        const std::vector<double> v =
            (!dvmcOn && m == ConsistencyModel::kSC)
                ? base
                : bench::runCyclesPerSeed(
                      bench::benchConfig(protocol, m, wl, dvmcOn,
                                         /*berOn=*/dvmcOn),
                      seeds, &detections);
        std::printf(" | %s", bench::ratioCell(bench::pairedRatio(v, base)).c_str());
        if (detections != 0) std::printf("!");
      }
      std::printf("\n");
    }
  }
  std::printf("('!' = unexpected checker detection)\n");
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_fig3_directory",
      "Figure 3: normalized runtime of the directory system, Base vs DVMC");
  const int rc = dvmc::run(dvmc::Protocol::kDirectory, "Figure 3",
                   "normalized runtime, directory protocol, Base vs DVMC");
  if (rc == 0) dvmc::bench::writeBenchJson("bench_fig3_directory");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
