// Section 6.1: the error-detection campaign. For every fault type (and
// every applicable protocol x model combination) inject errors into a
// running benchmark, record whether and how fast DVMC detects them, and
// whether a valid SafetyNet checkpoint remained available at detection.
//
// Expected result (paper): every injected error is detected well within
// the ~100k-cycle recovery window. Injections that are architecturally
// masked (e.g., a corrupted line evicted before reuse) are re-drawn, as
// in the paper's run-until-detected methodology.
#include "bench_common.hpp"
#include "faults/injector.hpp"

namespace dvmc {
namespace {

struct CampaignRow {
  int trials = 0;
  int detected = 0;
  int recoveryValid = 0;
  RunningStat latency;
  std::uint64_t reinjections = 0;
};

int run() {
  bench::header("Table 6.1", "error-detection campaign");
  const int trialsPerCase = std::max(1, benchSeedCount() - 1);

  std::printf("%-22s | %-6s | %-9s | %-10s | %-12s | %s\n", "fault", "det",
              "recovery", "mean lat", "max lat", "reinject");

  for (FaultType f : allFaultTypes()) {
    CampaignRow row;
    for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
      for (ConsistencyModel m : bench::allModels()) {
        if (!faultApplicable(f, m, p)) continue;
        for (int trial = 0; trial < trialsPerCase; ++trial) {
          SystemConfig cfg = SystemConfig::withDvmc(p, m);
          cfg.numNodes = 4;
          cfg.workload = WorkloadKind::kOltp;
          cfg.targetTransactions = 1'000'000;
          cfg.maxCycles = 20'000'000;
          cfg.seed = 100 + trial;
          cfg.dvmc.membarInjectionPeriod = 50'000;
          cfg.ber.interval = 20'000;
          cfg.ber.maxCheckpoints = 10;
          System sys(cfg);
          FaultInjector inj(sys, 0xC0FFEE + trial);
          sys.runUntil([&] { return sys.sim().now() >= 30'000; });

          auto flushes = [&] {
            std::uint64_t t = 0;
            for (NodeId n = 0; n < sys.numNodes(); ++n) {
              t += sys.core(n).stats().get("cpu.uoFlushes") +
                   sys.core(n).stats().get("cpu.rmoReplayFlushes");
            }
            return t;
          };
          const std::uint64_t f0 = flushes();
          const bool viaFlush = f == FaultType::kLsqWrongForward;
          auto detected = [&] {
            return sys.sink().any() || (viaFlush && flushes() > f0);
          };

          Cycle lastInjection = 0;
          int injections = 0;
          for (int round = 0; round < 60 && !detected(); ++round) {
            if (inj.inject(f)) {
              lastInjection = sys.sim().now();
              ++injections;
            }
            const Cycle until = sys.sim().now() + 25'000;
            sys.runUntil(
                [&] { return detected() || sys.sim().now() >= until; });
          }
          ++row.trials;
          row.reinjections += injections > 0 ? injections - 1 : 0;
          if (!detected()) continue;
          ++row.detected;
          const Cycle at =
              sys.sink().any() ? sys.sink().first().cycle : sys.sim().now();
          if (at >= lastInjection) {
            row.latency.addTracked(static_cast<double>(at - lastInjection));
          }
          if (!sys.sink().any() ||
              (sys.ber()->oldestCheckpoint() < lastInjection &&
               sys.recover(lastInjection))) {
            ++row.recoveryValid;
          }
        }
      }
    }
    std::printf("%-22s | %3d/%-3d| %4d/%-4d | %8.0f   | %10.0f  | %llu\n",
                faultTypeName(f), row.detected, row.trials,
                row.recoveryValid, row.detected, row.latency.mean(),
                row.latency.max(),
                static_cast<unsigned long long>(row.reinjections));
  }
  std::printf(
      "\n(det: detected/trials; recovery: valid checkpoint at detection;\n"
      " latency in cycles from the manifesting injection; reinject: masked\n"
      " injections re-drawn, as in the paper's run-until-detected design)\n");
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_tab_error_detection",
      "Section 6.1: the error-detection campaign");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_tab_error_detection");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
