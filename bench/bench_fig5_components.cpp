// Figure 5: DVMC component breakdown on the directory system with TSO.
// Configurations: Base (unprotected), SN (SafetyNet only), SN+DVCC
// (+coherence checker), SN+DVUO (+uniprocessor-ordering checker), and
// DVTSO (everything, including the AR checker).
//
// Expected shape (paper): Uniprocessor Ordering verification is the
// dominant slowdown; each mechanism adds a small overhead; full DVTSO is
// no slower than SN+DVUO; slash occasionally speeds up under SN.
#include "bench_common.hpp"

namespace dvmc {
namespace {

struct ComponentCfg {
  const char* name;
  bool ber, dvcc, dvuo, dvar;
};

int run() {
  bench::header("Figure 5", "component breakdown, directory, TSO");
  const int seeds = benchSeedCount();
  const ComponentCfg configs[] = {
      {"Base", false, false, false, false},
      {"SN", true, false, false, false},
      {"SN+DVCC", true, true, false, false},
      {"SN+DVUO", true, false, true, false},
      {"DVTSO", true, true, true, true},
  };

  std::printf("%-8s", "workload");
  for (const auto& c : configs) std::printf(" | %-12s", c.name);
  std::printf("\n");

  for (WorkloadKind wl : bench::paperWorkloads()) {
    std::printf("%-8s", workloadName(wl));
    std::vector<double> base;
    for (const auto& c : configs) {
      SystemConfig cfg = bench::benchConfig(
          Protocol::kDirectory, ConsistencyModel::kTSO, wl, false, c.ber);
      cfg.dvmc.cacheCoherence = c.dvcc;
      cfg.dvmc.uniprocOrdering = c.dvuo;
      cfg.dvmc.allowableReordering = c.dvar;
      std::uint64_t detections = 0;
      const std::vector<double> v =
          bench::runCyclesPerSeed(cfg, seeds, &detections);
      if (base.empty()) base = v;
      std::printf(" | %s",
                  bench::ratioCell(bench::pairedRatio(v, base)).c_str());
      if (detections != 0) std::printf("!");
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_fig5_components",
      "Figure 5: DVMC component breakdown (directory, TSO)");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_fig5_components");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
