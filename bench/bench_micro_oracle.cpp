// Microbenchmarks (google-benchmark) for the offline oracle data paths:
// commit-trace recording (the only per-operation cost a capturing run
// pays), dvmc-trace serialize/parse, and verify::checkTrace end-to-end on
// synthetic sequentially consistent interleavings. These bound the capture
// overhead of --capture-trace and the oracle cost per campaign case.
//
// Accepts `--json <path>` in addition to the usual --benchmark_* flags:
// writes a dvmc-bench document that the CI perf gate diffs against
// bench/baseline/bench_micro_oracle.json.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "consistency/op.hpp"
#include "verify/oracle.hpp"
#include "verify/streaming_oracle.hpp"
#include "verify/trace.hpp"

namespace dvmc {
namespace {

using verify::CapturedTrace;
using verify::TraceOp;
using verify::TraceRecord;
using verify::TraceRecorder;

// A coherent interleaved history: cores round-robin over a small location
// set, every store writes a globally unique value, every load observes the
// latest store (or the zero initial value). Consistent under every model,
// so checkTrace walks the full graph without early-exiting on a violation.
CapturedTrace syntheticTrace(std::size_t records, std::uint32_t cores,
                             ConsistencyModel model) {
  CapturedTrace t;
  t.declaredModel = static_cast<std::uint8_t>(model);
  t.numCores = cores;
  t.seed = 42;
  constexpr std::size_t kLocs = 64;
  std::uint64_t mem[kLocs] = {};
  std::vector<SeqNum> seq(cores, 0);
  std::uint64_t nextVal = 1;
  Rng rng(0x0AC1E);
  t.records.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    TraceRecord r;
    r.node = static_cast<std::uint8_t>(i % cores);
    r.model = t.declaredModel;
    r.seq = ++seq[r.node];
    r.flags = verify::kFlagPerformed;
    r.performCycle = 10 + i;
    if (rng.chance(0.05)) {
      r.op = TraceOp::kMembar;
      r.membarMask = membar::kAll;
    } else {
      const std::size_t loc = rng.below(kLocs);
      r.addr = 0x1000 + loc * 8;
      if (rng.chance(0.4)) {
        r.op = TraceOp::kStore;
        r.value = nextVal++;
        mem[loc] = r.value;
      } else {
        r.op = TraceOp::kLoad;
        r.value = mem[loc];
        r.readValue = r.value;
      }
    }
    t.records.push_back(r);
  }
  return t;
}

// Per-operation cost of capture on the commit path: a buffered store's
// onCommit plus its later storePerformed patch (the worst case; loads pay
// a single onCommit).
void BM_TraceRecorderStoreLifecycle(benchmark::State& state) {
  TraceRecorder rec(4, ConsistencyModel::kTSO, 0, 1,
                    std::size_t{1} << 28);
  TraceRecord r;
  r.op = TraceOp::kStore;
  SeqNum seq = 0;
  for (auto _ : state) {
    r.seq = ++seq;
    r.addr = 0x1000 + (seq % 64) * 8;
    r.value = seq;
    rec.onCommit(r);
    rec.storePerformed(0, seq, seq);
  }
  benchmark::DoNotOptimize(rec.trace());
}
BENCHMARK(BM_TraceRecorderStoreLifecycle);

void BM_TraceSerialize(benchmark::State& state) {
  const CapturedTrace t = syntheticTrace(
      static_cast<std::size_t>(state.range(0)), 4, ConsistencyModel::kTSO);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.serialize());
  }
}
BENCHMARK(BM_TraceSerialize)->Arg(16384);

void BM_TraceParse(benchmark::State& state) {
  const std::vector<std::uint8_t> bytes =
      syntheticTrace(static_cast<std::size_t>(state.range(0)), 4,
                     ConsistencyModel::kTSO)
          .serialize();
  for (auto _ : state) {
    CapturedTrace out;
    std::string err;
    benchmark::DoNotOptimize(
        CapturedTrace::parse(bytes.data(), bytes.size(), &out, &err));
  }
}
BENCHMARK(BM_TraceParse)->Arg(16384);

// Full oracle check — write serialization, value resolution, edge
// derivation, topological sort — per trace. One iteration checks
// state.range(0) records.
void BM_OracleCheck(benchmark::State& state) {
  const CapturedTrace t = syntheticTrace(
      static_cast<std::size_t>(state.range(0)), 4, ConsistencyModel::kTSO);
  for (auto _ : state) {
    const verify::OracleResult o = verify::checkTrace(t);
    benchmark::DoNotOptimize(o.clean);
  }
}
BENCHMARK(BM_OracleCheck)->Arg(4096)->Arg(32768);

// RMO drops the load-ordering (CoRR) edges; SC adds the most po edges.
// Bracket the model range at the larger trace size.
void BM_OracleCheckSc(benchmark::State& state) {
  const CapturedTrace t =
      syntheticTrace(32768, 8, ConsistencyModel::kSC);
  for (auto _ : state) {
    const verify::OracleResult o = verify::checkTrace(t);
    benchmark::DoNotOptimize(o.clean);
  }
}
BENCHMARK(BM_OracleCheckSc);

void BM_OracleCheckRmo(benchmark::State& state) {
  const CapturedTrace t =
      syntheticTrace(32768, 8, ConsistencyModel::kRMO);
  for (auto _ : state) {
    const verify::OracleResult o = verify::checkTrace(t);
    benchmark::DoNotOptimize(o.clean);
  }
}
BENCHMARK(BM_OracleCheckRmo);

// The streaming oracle over the same traces: bounded-window ingest +
// incremental settling instead of one whole-trace graph build. The perf
// gate tracks this next to BM_OracleCheck so a regression in either path
// is visible.
void BM_StreamingOracleCheck(benchmark::State& state) {
  const CapturedTrace t = syntheticTrace(
      static_cast<std::size_t>(state.range(0)), 4, ConsistencyModel::kTSO);
  for (auto _ : state) {
    const verify::OracleResult o = verify::checkTraceStreaming(t, {}, 4096);
    benchmark::DoNotOptimize(o.clean);
  }
}
BENCHMARK(BM_StreamingOracleCheck)->Arg(4096)->Arg(32768);

// Sharded read resolution across a thread pool (the dvmc_campaign
// configuration: --jobs feeds StreamingOracleOptions::jobs).
void BM_StreamingOracleCheckSharded(benchmark::State& state) {
  const CapturedTrace t = syntheticTrace(32768, 8, ConsistencyModel::kTSO);
  verify::StreamingOracleOptions o;
  o.jobs = 4;
  for (auto _ : state) {
    const verify::OracleResult r = verify::checkTraceStreaming(t, o, 4096);
    benchmark::DoNotOptimize(r.clean);
  }
}
BENCHMARK(BM_StreamingOracleCheckSharded);

// Console reporter that additionally records every iteration run into the
// dvmc-bench row collector (same convention as bench_micro_checkers:
// events/sec = benchmark iterations per wall second).
class RecordingReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      const double wallSec = r.real_accumulated_time;
      const double eps =
          wallSec > 0 ? static_cast<double>(r.iterations) / wallSec : 0;
      bench::recordBenchResult(r.benchmark_name(), eps, wallSec * 1e3);
    }
  }
};

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_micro_oracle",
      "microbenchmarks for the trace capture and oracle data paths",
      /*gbenchPassthrough=*/true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dvmc::RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  dvmc::bench::writeBenchJson("bench_micro_oracle");
  return 0;
}
