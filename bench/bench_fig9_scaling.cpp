// Figure 9: sensitivity of the DVMC overhead to system size (1 to 8
// processors), TSO, both protocols, 2.5 GB/s links.
//
// Expected shape (paper): no strong correlation — DVMC traffic is all
// unicast and scales linearly with overall traffic.
#include "bench_common.hpp"

namespace dvmc {
namespace {

int run() {
  bench::header("Figure 9", "DVTSO/Base runtime vs processor count, TSO");
  const int seeds = benchSeedCount();
  const std::size_t sizes[] = {1, 2, 4, 8};

  std::printf("%-6s | %-22s | %-22s\n", "nodes", "directory", "snooping");
  for (std::size_t n : sizes) {
    std::printf("%-6zu", n);
    for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
      RunningStat ratio;
      for (WorkloadKind wl : bench::paperWorkloads()) {
        SystemConfig base = bench::benchConfig(p, ConsistencyModel::kTSO, wl,
                                               false, false);
        base.numNodes = n;
        SystemConfig dvmc = bench::benchConfig(p, ConsistencyModel::kTSO, wl,
                                               true, true);
        dvmc.numNodes = n;
        const std::vector<double> rb = bench::runCyclesPerSeed(base, seeds);
        const std::vector<double> rd = bench::runCyclesPerSeed(dvmc, seeds);
        for (std::size_t i = 0; i < rb.size(); ++i) {
          if (rb[i] > 0) ratio.addTracked(rd[i] / rb[i]);
        }
      }
      std::printf(" |    %5.3f +-%5.3f    ", ratio.mean(), ratio.stddev());
    }
    std::printf("\n");
  }
  std::printf("(mean over workloads of per-workload DVTSO/Base ratios)\n");
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_fig9_scaling",
      "Figure 9: DVMC overhead vs system size (1 to 8 processors)");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_fig9_scaling");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
