// Table 8: workload characteristics — measured fraction of 32-bit (SPARC
// v8, TSO-forced) memory operations per workload, compared with the
// paper's reported values.
#include "bench_common.hpp"

namespace dvmc {
namespace {

int run() {
  bench::header("Table 8", "workloads and 32-bit operation fractions");
  const int seeds = benchSeedCount();

  struct PaperRef {
    WorkloadKind wl;
    double frac;
  };
  const PaperRef refs[] = {
      {WorkloadKind::kApache, 0.27}, {WorkloadKind::kOltp, 0.26},
      {WorkloadKind::kJbb, 0.15},    {WorkloadKind::kSlash, 0.27},
      {WorkloadKind::kBarnes, 0.02},
  };

  std::printf("%-8s | %-10s | %-16s | %-10s\n", "workload", "paper",
              "measured", "txns/run");
  for (const PaperRef& ref : refs) {
    SystemConfig cfg = bench::benchConfig(Protocol::kDirectory,
                                          ConsistencyModel::kPSO, ref.wl,
                                          true, true);
    RunningStat frac;
    std::uint64_t txns = 0;
    for (int s = 0; s < seeds; ++s) {
      cfg.seed = 1 + s;
      RunResult r = runOnce(cfg);
      txns = r.transactions;
      if (r.memOps > 0) {
        frac.addTracked(static_cast<double>(r.memOps32) /
                        static_cast<double>(r.memOps));
      }
    }
    std::printf("%-8s |   %4.2f     |  %5.3f +-%5.3f  | %llu\n",
                workloadName(ref.wl), ref.frac, frac.mean(), frac.stddev(),
                static_cast<unsigned long long>(txns));
  }
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_tab8_workloads",
      "Table 8: measured workload characteristics");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_tab8_workloads");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
