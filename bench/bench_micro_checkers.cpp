// Microbenchmarks (google-benchmark) for the DVMC checker data paths:
// CRC-16 block hashing, CET transitions, MET inform processing with the
// sorting queue, AR checker perform events, and VC operations. These bound
// the per-event software cost of the simulated hardware structures.
//
// Accepts `--json <path>` in addition to the usual --benchmark_* flags:
// writes a dvmc-bench document (one row per benchmark: name, iterations
// per second, measured wall ms) that the CI perf gate diffs against
// bench/baseline/bench_micro_checkers.json.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/crc16.hpp"
#include "dvmc/cache_epoch_checker.hpp"
#include "dvmc/memory_epoch_checker.hpp"
#include "dvmc/reorder_checker.hpp"
#include "dvmc/shadow_checker.hpp"
#include "dvmc/verification_cache.hpp"
#include "sim/simulator.hpp"

namespace dvmc {
namespace {

void BM_Crc16Block(benchmark::State& state) {
  DataBlock d;
  for (std::size_t w = 0; w < kBlockSizeWords; ++w) d.write(w * 8, 8, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hashBlock(d));
  }
}
BENCHMARK(BM_Crc16Block);

void BM_CetEpochCycle(benchmark::State& state) {
  Simulator sim;
  DvmcConfig cfg;
  ErrorSink sink;
  std::uint64_t sentCount = 0;
  CacheEpochChecker cet(sim, 0, cfg, &sink,
                        [&sentCount](Message) { ++sentCount; });
  DataBlock d;
  std::uint64_t t = 0;
  for (auto _ : state) {
    const Addr blk = ((t % 1024) + 1) * kBlockSizeBytes;
    cet.onEpochBegin(blk, t % 2 == 0, d, t);
    cet.onPerformAccess(blk, false);
    cet.onEpochEnd(blk, d, t + 1);
    ++t;
  }
  benchmark::DoNotOptimize(sentCount);
}
BENCHMARK(BM_CetEpochCycle);

void BM_MetInformProcessing(benchmark::State& state) {
  Simulator sim;
  DvmcConfig cfg;
  cfg.informQueueCapacity = static_cast<std::size_t>(state.range(0));
  ErrorSink sink;
  class FixedClock final : public LogicalClock {
   public:
    std::uint64_t now() override { return 0; }
  } clock;
  MemoryEpochChecker met(sim, 0, cfg, &sink, clock);
  DataBlock d;
  met.onHomeRequest(0x1000, d);
  std::uint64_t t = 0;
  Message m;
  m.type = MsgType::kInformEpoch;
  m.src = 1;
  m.addr = 0x1000;
  m.epoch.beginHash = hashBlock(d);
  m.epoch.endHash = m.epoch.beginHash;
  for (auto _ : state) {
    m.epoch.readWrite = (t % 2) == 0;
    m.epoch.begin = ltimeTruncate(t);
    m.epoch.end = ltimeTruncate(t + 1);
    met.onInform(m);
    t += 2;
  }
  met.drain();
}
BENCHMARK(BM_MetInformProcessing)->Arg(16)->Arg(256);

void BM_ArCheckerPerform(benchmark::State& state) {
  Simulator sim;
  ErrorSink sink;
  ReorderChecker ar(sim, 0, &sink);
  const OrderingTable t = OrderingTable::forModel(ConsistencyModel::kTSO);
  SeqNum seq = 1;
  for (auto _ : state) {
    ar.onCommit(OpType::kStore, seq);
    ar.onPerform(OpType::kStore, 0, seq, t);
    ++seq;
  }
}
BENCHMARK(BM_ArCheckerPerform);

void BM_VcStoreLifecycle(benchmark::State& state) {
  ErrorSink sink;
  VerificationCache vc(0, 64, &sink);
  Addr a = 0x1000;
  for (auto _ : state) {
    vc.storeCommit(a, 8, 42);
    benchmark::DoNotOptimize(vc.lookupStore(a, 8));
    vc.storePerformed(a, 8, 42, 0);
    a += 8;
    if (a > 0x2000) a = 0x1000;
  }
}
BENCHMARK(BM_VcStoreLifecycle);

void BM_ShadowCheckerCycle(benchmark::State& state) {
  Simulator sim;
  ErrorSink sink;
  ShadowCacheChecker sc(sim, 0, &sink);
  DataBlock d;
  std::uint64_t t = 0;
  for (auto _ : state) {
    const Addr blk = ((t % 1024) + 1) * kBlockSizeBytes;
    sc.onEpochBegin(blk, t % 2 == 0, d, t);
    sc.onPerformAccess(blk, false);
    sc.onEpochEnd(blk, d, t + 1);
    ++t;
  }
}
BENCHMARK(BM_ShadowCheckerCycle);

void BM_ShadowHomeGrantWriteback(benchmark::State& state) {
  Simulator sim;
  ErrorSink sink;
  ShadowHomeChecker sh(sim, 0, &sink);
  DataBlock d;
  sh.onHomeRequest(0x1000, d);
  const std::uint16_t h = hashBlock(d);
  NodeId n = 0;
  for (auto _ : state) {
    sh.onHomeGrant(0x1000, n % 8, true, true, h);
    sh.onHomeWriteback(0x1000, n % 8, h, true);
    ++n;
  }
}
BENCHMARK(BM_ShadowHomeGrantWriteback);

void BM_OrderingTableQuery(benchmark::State& state) {
  const OrderingTable t = OrderingTable::forModel(ConsistencyModel::kRMO);
  std::uint8_t m = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t.requiresOrder(OpType::kLoad, 0, OpType::kMembar, m));
    m = static_cast<std::uint8_t>((m % 15) + 1);
  }
}
BENCHMARK(BM_OrderingTableQuery);

// Console reporter that additionally records every iteration run into the
// dvmc-bench row collector (events/sec = benchmark iterations per wall
// second; each iteration is one checker event).
class RecordingReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      const double wallSec = r.real_accumulated_time;
      const double eps =
          wallSec > 0 ? static_cast<double>(r.iterations) / wallSec : 0;
      bench::recordBenchResult(r.benchmark_name(), eps, wallSec * 1e3);
    }
  }
};

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_micro_checkers",
      "microbenchmarks for the DVMC checker data paths",
      /*gbenchPassthrough=*/true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dvmc::RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  dvmc::bench::writeBenchJson("bench_micro_checkers");
  return 0;
}
