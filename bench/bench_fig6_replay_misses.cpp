// Figure 6: L1 cache misses during verification-stage replay, normalized
// to the number of L1 misses during regular execution (directory, TSO,
// full DVMC).
//
// Expected shape (paper): replay misses are rare — the window between a
// load's execution and its verification is small — so the ratio is far
// below 1, with lock-heavy workloads (slash) on the high side because
// failed lock acquires return to the spin loop.
#include "bench_common.hpp"

namespace dvmc {
namespace {

int run() {
  bench::header("Figure 6", "replay L1 misses / execution L1 misses");
  const int seeds = benchSeedCount();
  std::printf("%-8s | %-18s | %-12s | %-12s\n", "workload",
              "replay/regular", "replay misses", "regular misses");
  for (WorkloadKind wl : bench::paperWorkloads()) {
    SystemConfig cfg = bench::benchConfig(Protocol::kDirectory,
                                          ConsistencyModel::kTSO, wl,
                                          /*dvmcOn=*/true, /*berOn=*/true);
    RunningStat ratio;
    std::uint64_t replay = 0;
    std::uint64_t regular = 0;
    for (int s = 0; s < seeds; ++s) {
      cfg.seed = 1 + s;
      RunResult r = runOnce(cfg);
      replay += r.replayL1Misses;
      regular += r.regularL1Misses;
      if (r.regularL1Misses > 0) {
        ratio.addTracked(static_cast<double>(r.replayL1Misses) /
                         static_cast<double>(r.regularL1Misses));
      }
    }
    std::printf("%-8s |   %6.4f +-%6.4f  | %12llu | %12llu\n",
                workloadName(wl), ratio.mean(), ratio.stddev(),
                static_cast<unsigned long long>(replay),
                static_cast<unsigned long long>(regular));
  }
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_fig6_replay_misses",
      "Figure 6: L1 misses during verification-stage replay");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_fig6_replay_misses");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
