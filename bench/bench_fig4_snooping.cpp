// Figure 4: runtime of the snooping system, normalized to the unprotected
// SC baseline — same layout and expectations as Figure 3 (the paper found
// snooping overheads slightly lower than directory).
#include "bench_common.hpp"

namespace dvmc {
namespace {

int run() {
  bench::header("Figure 4",
                "normalized runtime, snooping protocol, Base vs DVMC");
  const int seeds = benchSeedCount();

  std::printf("%-8s | %-6s", "workload", "cfg");
  for (ConsistencyModel m : bench::allModels()) {
    std::printf(" | %-12s", modelName(m));
  }
  std::printf("\n");

  for (WorkloadKind wl : bench::paperWorkloads()) {
    const std::vector<double> base = bench::runCyclesPerSeed(
        bench::benchConfig(Protocol::kSnooping, ConsistencyModel::kSC, wl,
                           false, false),
        seeds);
    for (bool dvmcOn : {false, true}) {
      std::printf("%-8s | %-6s", workloadName(wl), dvmcOn ? "DVMC" : "Base");
      for (ConsistencyModel m : bench::allModels()) {
        std::uint64_t detections = 0;
        const std::vector<double> v =
            (!dvmcOn && m == ConsistencyModel::kSC)
                ? base
                : bench::runCyclesPerSeed(
                      bench::benchConfig(Protocol::kSnooping, m, wl, dvmcOn,
                                         dvmcOn),
                      seeds, &detections);
        std::printf(" | %s",
                    bench::ratioCell(bench::pairedRatio(v, base)).c_str());
        if (detections != 0) std::printf("!");
      }
      std::printf("\n");
    }
  }
  std::printf("('!' = unexpected checker detection)\n");
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_fig4_snooping",
      "Figure 4: normalized runtime of the snooping system, Base vs DVMC");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_fig4_snooping");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
