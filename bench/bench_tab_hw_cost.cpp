// Section 6.3: hardware cost of the DVMC checkers, computed for (a) the
// paper's full-scale configuration and (b) the simulated configuration
// used by the other benches.
#include <cstdio>

#include "bench_common.hpp"
#include "dvmc/hw_cost.hpp"

namespace dvmc {
namespace {

int run() {
  bench::header("Table 6.3", "DVMC hardware cost");

  HwCostInputs paper;
  paper.numNodes = 8;
  paper.l1 = {128, 4};   // 32 KB I+D class
  paper.l2 = {4096, 4};  // 1 MB
  paper.vcWords = 32;    // 256 B VC (paper: 32-256 B structures)
  paper.lsqEntries = 64;
  paper.writeBufferEntries = 64;
  std::printf("Paper-scale configuration (1 MB L2 per node):\n%s\n",
              computeHwCost(paper).toString().c_str());

  HwCostInputs sim;
  sim.numNodes = 8;
  sim.l1 = {64, 2};
  sim.l2 = {256, 4};
  sim.vcWords = 64;
  std::printf("Simulated configuration (64 KB L2 per node):\n%s\n",
              computeHwCost(sim).toString().c_str());

  std::printf(
      "Paper reference points: CET ~70 KB/node, MET ~102 KB/controller\n"
      "(even-spread occupancy; our MET figure is the worst case with every\n"
      "cached block homed at one controller — divide by the node count for\n"
      "the even-spread estimate).\n");
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_tab_hw_cost",
      "Section 6.3: hardware cost of the DVMC checkers");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_tab_hw_cost");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
