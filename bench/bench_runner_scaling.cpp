// Scaling harness for the experiment pipeline itself (not a paper figure):
//
//  (1) Simulator kernel throughput — events/sec through the calendar-queue
//      fast path (delays < 64 cycles), the far-future heap path, and a
//      70/30 mix approximating the machine's real delay distribution.
//  (2) runSeeds wall-clock scaling — a fixed 10-seed experiment (the
//      paper's perturbation count) at increasing --jobs, verifying the
//      merged statistics are bit-identical to the sequential run at every
//      thread count and reporting seeds/sec and speedup.
//
// Knobs: DVMC_BENCH_TXNS (per-run length), DVMC_SCALING_SEEDS (default 10),
// DVMC_SCALING_EVENTS (kernel events per measurement, default 2e6).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "sim/simulator.hpp"

namespace dvmc {
namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return fallback;
}

// --- (1) kernel throughput -------------------------------------------------

// Self-rescheduling chains: `width` concurrently live events, each executing
// and rescheduling itself `delay(i)` cycles out — the kernel steady state.
template <typename DelayFn>
double kernelEventsPerSec(std::uint64_t totalEvents, DelayFn delay) {
  Simulator sim;
  constexpr int kWidth = 64;
  std::uint64_t remaining = totalEvents;
  std::function<void(int)> tick = [&](int lane) {
    if (remaining == 0) return;
    --remaining;
    sim.schedule(delay(lane), [&tick, lane] { tick(lane); });
  };
  const auto t0 = Clock::now();
  for (int lane = 0; lane < kWidth; ++lane) {
    sim.schedule(delay(lane), [&tick, lane] { tick(lane); });
  }
  sim.run();
  const double dt = seconds(t0, Clock::now());
  return static_cast<double>(sim.eventsExecuted()) / dt;
}

void benchKernel() {
  const std::uint64_t events = envU64("DVMC_SCALING_EVENTS", 2'000'000);
  std::printf("\n-- simulator kernel throughput (%llu events/case) --\n",
              static_cast<unsigned long long>(events));
  std::printf("%-28s | %12s\n", "case", "events/sec");

  const double nearRate = kernelEventsPerSec(
      events, [](int lane) { return static_cast<Cycle>(1 + lane % 48); });
  std::printf("%-28s | %12.0f\n", "near (delay 1..48)", nearRate);

  const double farRate = kernelEventsPerSec(
      events, [](int lane) { return static_cast<Cycle>(80 + lane * 7); });
  std::printf("%-28s | %12.0f\n", "far  (delay 80..521)", farRate);

  const double mixRate = kernelEventsPerSec(events, [](int lane) {
    return lane % 10 < 7 ? static_cast<Cycle>(1 + lane % 48)
                         : static_cast<Cycle>(100 + lane * 11);
  });
  std::printf("%-28s | %12.0f\n", "mixed (70/30 near/far)", mixRate);
}

// --- (2) runSeeds scaling --------------------------------------------------

bool bitIdentical(const RunningStat& a, const RunningStat& b) {
  return a.count() == b.count() &&
         std::memcmp(&a, &b, sizeof(RunningStat)) == 0;
}

bool bitIdentical(const MultiRunResult& a, const MultiRunResult& b) {
  return bitIdentical(a.cycles, b.cycles) &&
         bitIdentical(a.peakLinkBytesPerCycle, b.peakLinkBytesPerCycle) &&
         bitIdentical(a.replayMissRatio, b.replayMissRatio) &&
         bitIdentical(a.frac32, b.frac32) && a.detections == b.detections &&
         a.squashes == b.squashes && a.allCompleted == b.allCompleted;
}

int benchRunSeeds() {
  const int seeds = static_cast<int>(envU64("DVMC_SCALING_SEEDS", 10));
  SystemConfig cfg = bench::benchConfig(Protocol::kDirectory,
                                        ConsistencyModel::kTSO,
                                        WorkloadKind::kOltp,
                                        /*dvmcOn=*/true, /*berOn=*/true);
  const unsigned hw = ThreadPool::hardwareWorkers();
  std::printf(
      "\n-- runSeeds scaling (%d seeds, oltp/directory/TSO+DVMC, hw=%u) --\n",
      seeds, hw);
  std::printf("%-6s | %10s | %10s | %8s | %s\n", "jobs", "seconds",
              "seeds/sec", "speedup", "stats vs jobs=1");

  std::vector<unsigned> jobList = {1, 2, 4};
  if (hw > 4) jobList.push_back(hw);

  MultiRunResult reference;
  double baseSec = 0.0;
  int rc = 0;
  for (unsigned jobs : jobList) {
    cfg.jobs = static_cast<int>(jobs);
    const auto t0 = Clock::now();
    const MultiRunResult r = runSeeds(cfg, seeds);
    const double dt = seconds(t0, Clock::now());
    const char* verdict = "reference";
    if (jobs == 1) {
      reference = r;
      baseSec = dt;
    } else if (bitIdentical(r, reference)) {
      verdict = "IDENTICAL";
    } else {
      verdict = "MISMATCH";
      rc = 1;
    }
    std::printf("%-6u | %10.2f | %10.2f | %7.2fx | %s\n", jobs, dt,
                static_cast<double>(seeds) / dt, baseSec / dt, verdict);
  }
  if (rc != 0) std::printf("ERROR: parallel statistics diverged\n");
  return rc;
}

int run() {
  bench::header("Runner scaling", "experiment-pipeline throughput");
  benchKernel();
  return benchRunSeeds();
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_runner_scaling",
      "scaling harness for the experiment pipeline (--jobs sweep)");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_runner_scaling");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
