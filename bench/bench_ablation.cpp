// Ablation studies for the design choices called out in DESIGN.md:
//  (1) membar-injection period vs lost-operation detection latency;
//  (2) MET inform-sorting residence vs false positives (checker-hardware
//      imprecision -> unnecessary recoveries, never incorrectness);
//  (3) write-buffer drain concurrency under PSO (the Table 5 optimization);
//  (4) store prefetching (the baseline optimization both systems rely on).
#include "bench_common.hpp"
#include "faults/injector.hpp"

namespace dvmc {
namespace {

void ablateMembarPeriod() {
  std::printf("\n-- (1) membar injection period vs detection latency "
              "(msg-drop faults, directory TSO) --\n");
  std::printf("%-12s | %-14s | %-10s\n", "period", "mean latency",
              "detected");
  for (Cycle period : {Cycle{10'000}, Cycle{50'000}, Cycle{100'000}}) {
    RunningStat lat;
    int detected = 0;
    int trials = 0;
    for (int trial = 0; trial < 3; ++trial) {
      SystemConfig cfg = SystemConfig::withDvmc(Protocol::kDirectory,
                                                ConsistencyModel::kTSO);
      cfg.numNodes = 4;
      cfg.workload = WorkloadKind::kOltp;
      cfg.targetTransactions = 1'000'000;
      cfg.maxCycles = 10'000'000;
      cfg.seed = 7 + trial;
      cfg.dvmc.membarInjectionPeriod = period;
      System sys(cfg);
      FaultInjector inj(sys, 0xAB1 + trial);
      sys.runUntil([&] { return sys.sim().now() >= 20'000; });
      Cycle injectedAt = 0;
      for (int round = 0; round < 40 && !sys.sink().any(); ++round) {
        if (inj.inject(FaultType::kMsgDrop)) injectedAt = sys.sim().now();
        const Cycle until = sys.sim().now() + period;
        sys.runUntil(
            [&] { return sys.sink().any() || sys.sim().now() >= until; });
      }
      ++trials;
      if (sys.sink().any() && sys.sink().first().cycle >= injectedAt) {
        ++detected;
        lat.addTracked(
            static_cast<double>(sys.sink().first().cycle - injectedAt));
      }
    }
    std::printf("%-12llu | %10.0f    | %d/%d\n",
                static_cast<unsigned long long>(period), lat.mean(),
                detected, trials);
  }
}

void ablateSortResidence() {
  std::printf("\n-- (2) MET inform-sort residence vs false positives "
              "(fault-free slash, snooping SC) --\n");
  std::printf("%-12s | %-16s\n", "residence", "false positives");
  for (Cycle residence : {Cycle{200}, Cycle{1'000}, Cycle{6'000}}) {
    std::uint64_t falsePositives = 0;
    for (int s = 0; s < 3; ++s) {
      SystemConfig cfg = SystemConfig::withDvmc(Protocol::kSnooping,
                                                ConsistencyModel::kSC);
      cfg.numNodes = 4;
      cfg.workload = WorkloadKind::kSlash;
      cfg.targetTransactions = 60;
      cfg.maxCycles = 10'000'000;
      cfg.seed = 1 + s;
      cfg.dvmc.informSortDelay = residence;
      falsePositives += runOnce(cfg).detections;
    }
    std::printf("%-12llu | %llu\n",
                static_cast<unsigned long long>(residence),
                static_cast<unsigned long long>(falsePositives));
  }
  std::printf("(checker imprecision only triggers unnecessary recoveries;\n"
              " it never compromises correctness — Section 3)\n");
}

void ablateWbConcurrency() {
  std::printf("\n-- (3) PSO write-buffer drain concurrency (Table 5) --\n");
  std::printf("%-12s | %-16s\n", "concurrency", "oltp runtime");
  double base = 0.0;
  for (std::size_t conc : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{8}}) {
    SystemConfig cfg = bench::benchConfig(Protocol::kDirectory,
                                          ConsistencyModel::kPSO,
                                          WorkloadKind::kOltp, false, false);
    cfg.cpu.wbConcurrency = conc;
    MultiRunResult r = runSeeds(cfg, benchSeedCount());
    if (base == 0.0) base = r.cycles.mean();
    std::printf("%-12zu | %5.3f (+-%5.3f)\n", conc, r.cycles.mean() / base,
                r.cycles.stddev() / base);
  }
}

void ablateWbCoalescing() {
  std::printf("\n-- (5) PSO write-buffer coalescing (Table 5 'optimized "
              "store issue policy') --\n");
  std::printf("%-12s | %-14s | %-16s\n", "coalescing", "oltp runtime",
              "coherence bytes");
  double base = 0.0;
  double baseBytes = 0.0;
  for (bool on : {true, false}) {
    SystemConfig cfg = bench::benchConfig(Protocol::kDirectory,
                                          ConsistencyModel::kPSO,
                                          WorkloadKind::kOltp, false, false);
    cfg.cpu.wbCoalescing = on;
    RunningStat cyc;
    std::uint64_t bytes = 0;
    for (int s = 0; s < benchSeedCount(); ++s) {
      cfg.seed = 1 + s;
      RunResult r = runOnce(cfg);
      cyc.addTracked(static_cast<double>(r.cycles));
      bytes += r.coherenceBytes;
    }
    if (base == 0.0) {
      base = cyc.mean();
      baseBytes = static_cast<double>(bytes);
    }
    std::printf("%-12s | %5.3f          | %5.3f\n", on ? "on" : "off",
                cyc.mean() / base, bytes / baseBytes);
  }
}

void ablateStorePrefetch() {
  std::printf("\n-- (4) store prefetching (baseline optimization) --\n");
  std::printf("%-12s | %-14s | %-14s\n", "prefetch", "SC runtime",
              "TSO runtime");
  double scBase = 0.0;
  double tsoBase = 0.0;
  for (bool pf : {true, false}) {
    SystemConfig sc = bench::benchConfig(Protocol::kDirectory,
                                         ConsistencyModel::kSC,
                                         WorkloadKind::kOltp, false, false);
    sc.cpu.storePrefetch = pf;
    SystemConfig tso = sc;
    tso.model = ConsistencyModel::kTSO;
    MultiRunResult rsc = runSeeds(sc, benchSeedCount());
    MultiRunResult rtso = runSeeds(tso, benchSeedCount());
    if (pf) {
      scBase = rsc.cycles.mean();
      tsoBase = rtso.cycles.mean();
    }
    std::printf("%-12s | %5.3f          | %5.3f\n", pf ? "on" : "off",
                rsc.cycles.mean() / scBase, rtso.cycles.mean() / tsoBase);
  }
}

void ablateCheckerKind() {
  std::printf("\n-- (6) coherence-checker modularity: epoch/MET vs "
              "Cantin-style shadow replay (directory TSO, full DVMC) --\n");
  std::printf("%-8s | %-14s | %-14s | %-12s\n", "workload", "epoch",
              "shadow", "inform bytes");
  for (WorkloadKind wl :
       {WorkloadKind::kApache, WorkloadKind::kOltp, WorkloadKind::kSlash}) {
    SystemConfig base = bench::benchConfig(Protocol::kDirectory,
                                           ConsistencyModel::kTSO, wl,
                                           false, false);
    const std::vector<double> vb =
        bench::runCyclesPerSeed(base, benchSeedCount());

    double cells[2];
    std::uint64_t informs[2];
    int idx = 0;
    for (auto kind : {SystemConfig::CoherenceCheckerKind::kEpoch,
                      SystemConfig::CoherenceCheckerKind::kShadow}) {
      SystemConfig cfg = bench::benchConfig(Protocol::kDirectory,
                                            ConsistencyModel::kTSO, wl,
                                            true, true);
      cfg.coherenceChecker = kind;
      std::uint64_t inform = 0;
      RunningStat cyc;
      for (int s = 0; s < benchSeedCount(); ++s) {
        cfg.seed = 1 + s;
        RunResult r = runOnce(cfg);
        cyc.addTracked(static_cast<double>(r.cycles) /
                       vb[static_cast<std::size_t>(s)]);
        inform += r.informBytes;
      }
      cells[idx] = cyc.mean();
      informs[idx] = inform;
      ++idx;
    }
    std::printf("%-8s | %5.3f          | %5.3f          | %llu vs %llu\n",
                workloadName(wl), cells[0], cells[1],
                static_cast<unsigned long long>(informs[0]),
                static_cast<unsigned long long>(informs[1]));
  }
  std::printf("(runtime normalized to the unprotected base; the shadow\n"
              " checker sends zero inform traffic at the cost of weaker\n"
              " cache-to-cache data coverage — Section 8 modularity)\n");
}

void ablateInformYield() {
  std::printf("\n-- (7) checker-traffic yielding (Section 6.2.3: delay "
              "transmissions until bursts are over) --\n");
  std::printf("%-8s | %-22s | %-22s\n", "yield",
              "slash runtime (DVTSO)", "peak link bytes/cyc");
  double base = 0.0;
  for (bool yield : {false, true}) {
    SystemConfig cfg = bench::benchConfig(Protocol::kDirectory,
                                          ConsistencyModel::kTSO,
                                          WorkloadKind::kSlash, true, true);
    cfg.torus.yieldCheckerTraffic = yield;
    RunningStat cyc;
    RunningStat bw;
    for (int s = 0; s < benchSeedCount(); ++s) {
      cfg.seed = 1 + s;
      RunResult r = runOnce(cfg);
      cyc.addTracked(static_cast<double>(r.cycles));
      bw.addTracked(r.peakLinkBytesPerCycle);
    }
    if (base == 0.0) base = cyc.mean();
    std::printf("%-8s |   %5.3f (+-%5.3f)    |   %5.3f (+-%5.3f)\n",
                yield ? "on" : "off", cyc.mean() / base,
                cyc.stddev() / base, bw.mean(), bw.stddev());
  }
}

int run() {
  bench::header("Ablations", "design-choice sensitivity studies");
  ablateMembarPeriod();
  ablateSortResidence();
  ablateWbConcurrency();
  ablateStorePrefetch();
  ablateWbCoalescing();
  ablateCheckerKind();
  ablateInformYield();
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_ablation",
      "ablation studies for the design choices in DESIGN.md");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_ablation");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
