// Figure 8: sensitivity of the DVMC overhead to interconnect link
// bandwidth (1 to 3 GB/s), average over the workloads, TSO, both
// protocols. Reported as DVTSO runtime normalized to the unprotected
// system at the same bandwidth.
//
// Expected shape (paper): no statistically significant correlation — DVMC
// traffic rides in the idle gaps between bursts.
#include "bench_common.hpp"

namespace dvmc {
namespace {

int run() {
  bench::header("Figure 8", "DVTSO/Base runtime vs link bandwidth, TSO");
  const int seeds = benchSeedCount();
  const double kCoreGhz = 2.0;  // bytes/cycle = GB/s / core GHz
  const double bandwidthsGBs[] = {1.0, 1.5, 2.0, 2.5, 3.0};

  std::printf("%-10s | %-22s | %-22s\n", "link GB/s", "directory",
              "snooping");
  for (double gbs : bandwidthsGBs) {
    std::printf("%-10.1f", gbs);
    for (Protocol p : {Protocol::kDirectory, Protocol::kSnooping}) {
      RunningStat ratio;
      for (WorkloadKind wl : bench::paperWorkloads()) {
        SystemConfig base = bench::benchConfig(p, ConsistencyModel::kTSO, wl,
                                               false, false);
        base.torus.bytesPerCycle = gbs / kCoreGhz;
        base.tree.bytesPerCycle = gbs / kCoreGhz;
        SystemConfig dvmc = bench::benchConfig(p, ConsistencyModel::kTSO, wl,
                                               true, true);
        dvmc.torus.bytesPerCycle = gbs / kCoreGhz;
        dvmc.tree.bytesPerCycle = gbs / kCoreGhz;
        const std::vector<double> rb = bench::runCyclesPerSeed(base, seeds);
        const std::vector<double> rd = bench::runCyclesPerSeed(dvmc, seeds);
        for (std::size_t i = 0; i < rb.size(); ++i) {
          if (rb[i] > 0) ratio.addTracked(rd[i] / rb[i]);
        }
      }
      std::printf(" |    %5.3f +-%5.3f    ", ratio.mean(), ratio.stddev());
    }
    std::printf("\n");
  }
  std::printf("(mean over workloads of per-workload DVTSO/Base ratios)\n");
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_fig8_linkbw",
      "Figure 8: DVMC overhead vs interconnect link bandwidth");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_fig8_linkbw");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
