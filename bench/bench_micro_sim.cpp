// Microbenchmarks for the event kernel and the network hot paths — the
// ones the zero-allocation work targets. Four rows:
//
//   SimDispatchSteadyState   schedule/dispatch churn entirely inside the
//                            64-cycle calendar window (the shape of cache
//                            and link latencies). The perf gate requires
//                            allocsPerEvent == 0 here: captures live in
//                            the slab event node, so the steady state may
//                            not touch the heap at all.
//   SimDispatchFarFutureMix  same churn with ~3/4 of delays past the
//                            window, exercising the binary-heap spill
//                            path (checkpoint-interval-like timers).
//   TorusMessageRouting      16-node torus, 16 messages (a 1:3 data/
//                            control mix) ping-ponging between corner
//                            pairs; every hop is an event carrying a
//                            pooled message handle.
//   BroadcastFanOut          16-leaf ordered broadcast tree with one leaf
//                            rebroadcasting, sustaining a serialized
//                            stream of fan-out deliveries.
//
// Unlike the gbench micros, timing is hand-rolled (warmup, then a timed
// event-count window) because each row also reports *counted* heap
// allocations per executed event: DVMC_BENCH_ALLOC_HOOK below replaces
// the global allocation functions in this binary with counting wrappers
// (see bench_common.hpp). The dvmc-bench JSON rows carry allocsPerEvent,
// and tools/check_perf.py fails the gate on any regression against
// bench/baseline/bench_micro_sim.json.
#define DVMC_BENCH_ALLOC_HOOK 1

#include "bench_common.hpp"
#include "net/broadcast_tree.hpp"
#include "net/torus.hpp"
#include "sim/simulator.hpp"

namespace dvmc {
namespace {

using SteadyClock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------------

/// Runs the kernel until `events` more events have executed, reporting
/// throughput and the counted heap allocations per event over exactly
/// that window. Callers run their own warmup first so slab/heap/pool
/// growth is paid before the counter resets.
void measureEvents(const char* name, Simulator& sim, std::uint64_t events) {
  const std::uint64_t goal = sim.eventsExecuted() + events;
  bench::resetAllocCount();
  const auto t0 = SteadyClock::now();
  while (sim.eventsExecuted() < goal) {
    if (!sim.step()) break;  // drained early: a bench wiring bug
  }
  const auto t1 = SteadyClock::now();
  const std::uint64_t allocs = bench::allocCount();
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  const double wallMs = sec * 1e3;
  const double eps = sec > 0 ? static_cast<double>(events) / sec : 0;
  const double ape = static_cast<double>(allocs) / static_cast<double>(events);
  std::printf("  %-24s %12.0f events/s  %8.2f ms  %10.6f allocs/event\n",
              name, eps, wallMs, ape);
  bench::recordBenchResult(name, eps, wallMs, ape);
}

// ---------------------------------------------------------------------------
// Kernel dispatch rows
// ---------------------------------------------------------------------------

/// Self-perpetuating scheduler: each dispatch mixes its payload and
/// reschedules itself. The capture (this + 28 payload bytes) is shaped
/// like the mid-size hot-path captures; delayMask picks the delay
/// distribution (7 -> all within the calendar window, 255 -> ~3/4 spill
/// to the far-future heap).
class DispatchAgent {
 public:
  DispatchAgent(Simulator& sim, std::uint64_t seed, std::uint64_t delayMask)
      : sim_(sim), x_(seed | 1), delayMask_(delayMask) {}

  void pump() {
    const std::uint64_t a = x_ ^ 0x9e3779b97f4a7c15ull;
    const std::uint64_t b = x_ * 0x2545f4914f6cdd1dull;
    const std::uint64_t c = x_ + 0x632be59bd9b4e019ull;
    const std::uint32_t d = static_cast<std::uint32_t>(x_ >> 17);
    sim_.schedule(1 + (x_ & delayMask_), [this, a, b, c, d] {
      x_ = a ^ (b >> 7) ^ (c << 3) ^ d;
      pump();
    });
  }

  std::uint64_t value() const { return x_; }

 private:
  Simulator& sim_;
  std::uint64_t x_;
  std::uint64_t delayMask_;
};

void benchDispatch(const char* name, std::uint64_t delayMask,
                   std::uint64_t warmupEvents, std::uint64_t events) {
  Simulator sim;
  std::vector<DispatchAgent> agents;
  agents.reserve(64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    agents.emplace_back(sim, 0x5eed0000 + i * 7919, delayMask);
  }
  for (auto& a : agents) a.pump();
  while (sim.eventsExecuted() < warmupEvents) sim.step();
  measureEvents(name, sim, events);
  std::uint64_t sink = 0;
  for (const auto& a : agents) sink ^= a.value();
  if (sink == 0xdeadbeef) std::printf("(unlikely)\n");  // keep agents live
}

// ---------------------------------------------------------------------------
// Torus routing row
// ---------------------------------------------------------------------------

/// Bounces every delivery straight back to its sender, keeping a fixed
/// population of messages in flight forever.
class PingPongEndpoint final : public NetworkEndpoint {
 public:
  explicit PingPongEndpoint(TorusNetwork& net) : net_(&net) {}

  void onMessage(const Message& msg) override {
    Message reply = msg;
    reply.src = msg.dest;
    reply.dest = msg.src;
    net_->send(std::move(reply));
  }

 private:
  TorusNetwork* net_;
};

void benchTorus(std::uint64_t warmupEvents, std::uint64_t events) {
  Simulator sim;
  TorusNetwork net(sim, 16);  // 4x4
  std::vector<PingPongEndpoint> eps(16, PingPongEndpoint(net));
  for (NodeId n = 0; n < 16; ++n) net.attach(n, &eps[n]);
  // One message per node — every fourth carries a data block, the rest
  // are control-sized, roughly a coherence protocol's mix — each headed
  // for the opposite corner of its 4x4 quadrant-pair: (n + 10) % 16 is
  // +2 in x and +2 in y, so every flight is 4 hops and the 16 flights
  // cover every link direction.
  for (NodeId n = 0; n < 16; ++n) {
    Message m;
    m.type = (n % 4 == 0) ? MsgType::kData : MsgType::kGetS;
    m.src = n;
    m.dest = static_cast<NodeId>((n + 10) % 16);
    m.addr = static_cast<Addr>(n) * kBlockSizeBytes;
    m.hasData = (n % 4 == 0);
    m.data.write(0, 8, n);
    net.send(std::move(m));
  }
  while (sim.eventsExecuted() < warmupEvents) sim.step();
  measureEvents("TorusMessageRouting", sim, events);
}

// ---------------------------------------------------------------------------
// Broadcast fan-out row
// ---------------------------------------------------------------------------

class FanOutLeaf final : public NetworkEndpoint {
 public:
  /// Pass the tree only to the one leaf that sustains the stream by
  /// rebroadcasting everything it observes.
  explicit FanOutLeaf(BroadcastTree* tree = nullptr) : tree_(tree) {}

  void onMessage(const Message& msg) override {
    ++delivered_;
    if (tree_ != nullptr) {
      Message next = msg;
      next.src = 0;
      tree_->broadcast(std::move(next));
    }
  }

  std::uint64_t delivered() const { return delivered_; }

 private:
  BroadcastTree* tree_;
  std::uint64_t delivered_ = 0;
};

void benchBroadcast(std::uint64_t warmupEvents, std::uint64_t events) {
  Simulator sim;
  BroadcastTree tree(sim, 16);
  std::vector<FanOutLeaf> leaves;
  leaves.reserve(16);
  leaves.emplace_back(&tree);  // leaf 0 rebroadcasts
  for (int i = 1; i < 16; ++i) leaves.emplace_back();
  for (NodeId n = 0; n < 16; ++n) tree.attach(n, &leaves[n]);
  Message m;
  m.type = MsgType::kSnpGetS;
  m.src = 0;
  m.addr = 0x1000;
  tree.broadcast(std::move(m));
  while (sim.eventsExecuted() < warmupEvents) sim.step();
  measureEvents("BroadcastFanOut", sim, events);
  if (leaves[7].delivered() == 0) std::printf("(fan-out broken)\n");
}

int runAll() {
  std::printf("==========================================================\n");
  std::printf("bench_micro_sim — event kernel / network hot paths\n");
  std::printf("  allocation counting: active (DVMC_BENCH_ALLOC_HOOK)\n");
  std::printf("==========================================================\n");
  benchDispatch("SimDispatchSteadyState", /*delayMask=*/7,
                /*warmupEvents=*/1'000'000, /*events=*/4'000'000);
  benchDispatch("SimDispatchFarFutureMix", /*delayMask=*/255,
                /*warmupEvents=*/500'000, /*events=*/2'000'000);
  benchTorus(/*warmupEvents=*/200'000, /*events=*/1'000'000);
  benchBroadcast(/*warmupEvents=*/50'000, /*events=*/200'000);
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_micro_sim",
      "event-kernel and network microbenchmarks with counted heap "
      "allocations per event");
  const int rc = dvmc::runAll();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_micro_sim");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
