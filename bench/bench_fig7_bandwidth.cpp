// Figure 7: mean bandwidth on the most heavily loaded link (directory,
// TSO) for Base, SN, SN+DVCC, and full DVTSO.
//
// Expected shape (paper): the coherence checker's Inform-Epoch traffic
// adds a consistent ~20-30% on the hottest link; SafetyNet adds a smaller
// amount; load replay has no measurable bandwidth impact.
#include "bench_common.hpp"

namespace dvmc {
namespace {

struct ComponentCfg {
  const char* name;
  bool ber, dvcc, dvuo, dvar;
};

int run() {
  bench::header("Figure 7", "peak-link bandwidth (bytes/cycle), directory, TSO");
  const int seeds = benchSeedCount();
  const ComponentCfg configs[] = {
      {"Base", false, false, false, false},
      {"SN", true, false, false, false},
      {"SN+DVCC", true, true, false, false},
      {"DVTSO", true, true, true, true},
  };

  std::printf("%-8s", "workload");
  for (const auto& c : configs) std::printf(" | %-14s", c.name);
  std::printf(" | DVCC ovh | inform%% | ckpt%%\n");

  for (WorkloadKind wl : bench::paperWorkloads()) {
    std::printf("%-8s", workloadName(wl));
    double snMean = 0.0;
    double dvccMean = 0.0;
    for (const auto& c : configs) {
      SystemConfig cfg = bench::benchConfig(
          Protocol::kDirectory, ConsistencyModel::kTSO, wl, false, c.ber);
      cfg.dvmc.cacheCoherence = c.dvcc;
      cfg.dvmc.uniprocOrdering = c.dvuo;
      cfg.dvmc.allowableReordering = c.dvar;
      RunningStat bw;
      std::uint64_t informB = 0;
      std::uint64_t ckptB = 0;
      std::uint64_t totalB = 0;
      for (int s = 0; s < seeds; ++s) {
        cfg.seed = 1 + s;
        RunResult r = runOnce(cfg);
        bw.addTracked(r.peakLinkBytesPerCycle);
        informB += r.informBytes;
        ckptB += r.ckptBytes;
        totalB += r.totalNetBytes;
      }
      std::printf(" | %5.3f +-%5.3f", bw.mean(), bw.stddev());
      if (std::string(c.name) == "SN") snMean = bw.mean();
      if (std::string(c.name) == "SN+DVCC") dvccMean = bw.mean();
      if (std::string(c.name) == "DVTSO" && totalB > 0) {
        std::printf(" | %+5.1f%%  |  %4.1f%%  | %4.1f%%",
                    snMean > 0 ? (dvccMean / snMean - 1.0) * 100.0 : 0.0,
                    100.0 * informB / totalB, 100.0 * ckptB / totalB);
      }
    }
    std::printf("\n");
  }
  std::printf("(DVCC ovh: SN+DVCC peak-link traffic vs SN; inform%%/ckpt%%:\n"
              " share of total DVTSO torus bytes)\n");
  return 0;
}

}  // namespace
}  // namespace dvmc

int main(int argc, char** argv) {
  argc = dvmc::bench::parseStandardFlags(
      argc, argv, "bench_fig7_bandwidth",
      "Figure 7: mean bandwidth on the most heavily loaded link");
  const int rc = dvmc::run();
  if (rc == 0) dvmc::bench::writeBenchJson("bench_fig7_bandwidth");
  const int obsRc = dvmc::obs::finalizeObs();
  return rc != 0 ? rc : obsRc;
}
